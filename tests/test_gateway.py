"""Tests for the multi-tenant gateway: metering, auth, admission, HTTP.

The ordering contract under test everywhere: a request that is refused
(401/400/404/429/503) leaves tenant state bit-for-bit unchanged, and a
request that succeeds spends exactly its price — so for every tenant,
at every observable moment, ``issued == spent + reserved + remaining``.
The HTTP layer is additionally held to the stack's parity bar:
forecasts over sockets are bitwise identical to in-process
``ForecastService.predict``.
"""

from __future__ import annotations

import json
import os
import threading
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.core import TimeKDConfig
from repro.core.student import StudentModel
from repro.data import StandardScaler
from repro.gateway import (
    INGEST_UNITS,
    PREDICT_UNITS,
    AdmissionController,
    ApiKeyRegistry,
    Gateway,
    GatewayServer,
    KeyFileError,
    Meter,
    QuotaError,
    SaturationError,
    TokenBucket,
    write_keys_file,
)
from repro.serve import ForecastService, save_student_artifact

L, N, M = 32, 3, 8


def gateway_config(**overrides) -> TimeKDConfig:
    base = TimeKDConfig(history_length=L, horizon=M, num_variables=N,
                        d_model=16, num_heads=2, num_layers=1, ffn_dim=32)
    return base.with_updates(**overrides) if overrides else base


def make_bundle(directory, name="ettm1-h8.npz",
                dataset="ETTm1") -> TimeKDConfig:
    config = gateway_config()
    student = StudentModel(config)
    student.eval()
    scaler = StandardScaler().fit(np.random.default_rng(0).normal(
        2.0, 3.0, size=(200, config.num_variables)))
    save_student_artifact(os.path.join(directory, name), student, config,
                          scaler=scaler, metadata={"dataset": dataset})
    return config


@pytest.fixture(scope="module")
def artifact_dir(tmp_path_factory) -> str:
    directory = str(tmp_path_factory.mktemp("gateway-artifacts"))
    make_bundle(directory)
    return directory


@pytest.fixture()
def service(artifact_dir):
    with ForecastService(artifact_dir) as svc:
        yield svc


@pytest.fixture()
def keys_path(tmp_path) -> str:
    path = str(tmp_path / "keys.json")
    write_keys_file(path, {
        "k-acme": {"tenant": "acme", "units": 1000},
        "k-tiny": {"tenant": "tiny", "units": 9},
    })
    return path


@pytest.fixture()
def gateway(service, keys_path) -> Gateway:
    return Gateway(service, ApiKeyRegistry(keys_path))


@pytest.fixture()
def history(rng) -> np.ndarray:
    return rng.normal(size=(L, N)).astype(np.float32)


def usage_of(gateway: Gateway, tenant: str) -> dict:
    return gateway.meter.account(tenant).as_dict()


# ----------------------------------------------------------------------
# metering
# ----------------------------------------------------------------------
class TestMeter:
    def test_reserve_commit_release_conserve_units(self):
        account = Meter().account("acme", issued=100)
        first = account.reserve(30, "predict")
        second = account.reserve(20, "ingest")
        assert (account.issued, account.reserved,
                account.remaining) == (100, 50, 50)
        first.commit()
        second.release()
        assert (account.spent, account.reserved,
                account.remaining) == (30, 0, 70)
        assert account.spent_by == {"predict": 30}
        assert account.ops_by == {"predict": 1}
        assert account.issued == account.spent + account.reserved \
            + account.remaining

    def test_overdraw_raises_and_changes_nothing(self):
        account = Meter().account("acme", issued=10)
        account.reserve(8, "predict").commit()
        with pytest.raises(QuotaError) as excinfo:
            account.reserve(4, "predict")
        assert excinfo.value.requested == 4
        assert excinfo.value.remaining == 2
        assert (account.spent, account.reserved,
                account.remaining) == (8, 0, 2)

    def test_split_commits_the_accepted_part_only(self):
        account = Meter().account("acme", issued=100)
        reservation = account.reserve(10, "ingest")
        accepted, remainder = reservation.split(7)
        accepted.commit()
        remainder.release()
        assert (account.spent, account.remaining) == (7, 93)
        with pytest.raises(ValueError):
            account.reserve(5, "ingest").split(6)

    def test_settle_is_single_shot(self):
        account = Meter().account("acme", issued=10)
        reservation = account.reserve(4, "predict")
        reservation.commit()
        reservation.commit()
        reservation.release()  # all no-ops after the first settle
        assert (account.spent, account.remaining) == (4, 6)

    def test_expand_grows_but_never_shrinks(self):
        account = Meter().account("acme", issued=10)
        account.expand(50)
        assert account.issued == 50
        account.expand(5)
        assert account.issued == 50

    def test_export_import_round_trip(self):
        meter = Meter()
        account = meter.account("acme", issued=100)
        account.reserve(12, "predict").commit()
        account.reserve(3, "ingest").commit()
        account.reserve(5, "predict")  # in flight: must not persist
        state = meter.export_state()
        restored = Meter()
        restored.import_state(json.loads(json.dumps(state)))
        usage = restored.account("acme").as_dict()
        assert usage["issued"] == 100
        assert usage["spent"] == 15
        assert usage["reserved"] == 0  # a restart releases reservations
        assert usage["remaining"] == 85
        assert usage["spent_by"] == {"predict": 12, "ingest": 3}
        assert usage["ops_by"] == {"predict": 1, "ingest": 1}


class TestTokenBucket:
    def test_acquire_refuse_refill(self):
        now = [0.0]
        bucket = TokenBucket(rate=2.0, burst=4.0, clock=lambda: now[0])
        assert bucket.try_acquire(3) == 0.0
        retry = bucket.try_acquire(3)  # 1 token left, needs 2 more
        assert retry == pytest.approx(1.0)
        # the refusal consumed nothing
        assert bucket.available() == pytest.approx(1.0)
        now[0] += 1.0
        assert bucket.try_acquire(3) == 0.0
        assert bucket.available() == pytest.approx(0.0)

    def test_burst_caps_the_refill(self):
        now = [0.0]
        bucket = TokenBucket(rate=100.0, burst=5.0, clock=lambda: now[0])
        now[0] += 60.0
        assert bucket.available() == pytest.approx(5.0)

    def test_invalid_shapes_rejected(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0, burst=1.0)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst=0.0)


# ----------------------------------------------------------------------
# key registry
# ----------------------------------------------------------------------
class TestApiKeyRegistry:
    def test_resolves_keys_with_defaults(self, keys_path):
        registry = ApiKeyRegistry(keys_path, default_rate=7.0)
        resolved = registry.authenticate("k-acme")
        assert resolved.tenant == "acme"
        assert resolved.units == 1000
        assert resolved.rate == 7.0  # file omits rate -> registry default
        assert registry.authenticate("unknown") is None
        assert registry.authenticate(None) is None
        assert registry.tenants() == ["acme", "tiny"]

    def test_hot_reload_picks_up_new_keys(self, keys_path):
        registry = ApiKeyRegistry(keys_path)
        assert registry.authenticate("k-new") is None
        write_keys_file(keys_path, {
            "k-new": {"tenant": "newco", "units": 5}})
        os.utime(keys_path, ns=(1, 1))  # force an mtime_ns change
        assert registry.authenticate("k-new").tenant == "newco"
        assert registry.authenticate("k-acme") is None  # rotated out

    def test_bad_edit_keeps_previous_keys(self, keys_path):
        registry = ApiKeyRegistry(keys_path)
        with open(keys_path, "w") as handle:
            handle.write("{ not json")
        os.utime(keys_path, ns=(2, 2))
        assert registry.authenticate("k-acme").tenant == "acme"

    def test_initial_bad_file_refuses_to_start(self, tmp_path):
        path = str(tmp_path / "bad.json")
        with open(path, "w") as handle:
            json.dump({"version": 99, "keys": {}}, handle)
        with pytest.raises(KeyFileError):
            ApiKeyRegistry(path)
        with pytest.raises(KeyFileError):
            ApiKeyRegistry(str(tmp_path / "missing.json"))

    def test_write_validates_before_publishing(self, tmp_path):
        path = str(tmp_path / "keys.json")
        with pytest.raises(KeyFileError):
            write_keys_file(path, {"k": {"tenant": "t", "rate": 0}})
        with pytest.raises(KeyFileError):
            write_keys_file(path, {"k": {"units": 5}})  # no tenant
        assert not os.path.exists(path)


# ----------------------------------------------------------------------
# admission
# ----------------------------------------------------------------------
class _FakePressure:
    def __init__(self, depth=0, flight=0):
        self.depth, self.flight = depth, flight

    def pressure(self):
        return self.depth, self.flight


class TestAdmissionController:
    def test_admits_under_and_sheds_over_the_bound(self):
        fake = _FakePressure(depth=3, flight=2)
        admission = AdmissionController(fake, max_pending=6)
        admission.admit()  # 5 + 1 <= 6
        assert admission.headroom() == 1
        fake.flight = 3
        with pytest.raises(SaturationError) as excinfo:
            admission.admit()
        assert excinfo.value.load == 6
        assert excinfo.value.limit == 6
        assert excinfo.value.retry_after == 1.0
        assert admission.headroom() == 0

    def test_cost_counts_against_the_bound(self):
        admission = AdmissionController(_FakePressure(), max_pending=4)
        admission.admit(cost=4)
        with pytest.raises(SaturationError):
            admission.admit(cost=5)


# ----------------------------------------------------------------------
# gateway handlers (in process — the same path HTTP drives)
# ----------------------------------------------------------------------
class TestGatewayHandlers:
    def test_predict_bitwise_equals_direct_service(self, gateway,
                                                   service, history):
        tenant_key = gateway.authenticate("k-acme")
        response = gateway.predict(
            tenant_key, {"history": history.tolist()})
        assert response.status == 200
        direct = service.predict(history)
        # float32 -> JSON-able floats -> float32 is exact, so the HTTP
        # representation can (and must) round-trip bitwise.
        via_json = np.asarray(
            json.loads(json.dumps(response.payload))["forecast"],
            dtype=np.float32)
        np.testing.assert_array_equal(via_json, direct)
        assert response.payload["units"] == {
            "spent": PREDICT_UNITS, "remaining": 1000 - PREDICT_UNITS}

    @pytest.mark.parametrize("payload, status", [
        ({}, 400),                                   # missing history
        ({"history": [[1.0], [1.0, 2.0]]}, 400),     # ragged
        ({"history": [1.0, 2.0]}, 400),              # wrong ndim
        ({"history": [[1.0, 2.0, 3.0]]}, 400),       # wrong window len
        ({"history": None, "dataset": 7}, 400),      # bad dataset type
    ])
    def test_invalid_predicts_cost_nothing(self, gateway, payload,
                                           status, history):
        if payload.get("history") is None and "dataset" in payload:
            payload["history"] = history.tolist()
        tenant_key = gateway.authenticate("k-acme")
        response = gateway.predict(tenant_key, payload)
        assert response.status == status
        usage = usage_of(gateway, "acme")
        assert usage["spent"] == 0 and usage["reserved"] == 0
        assert gateway.stats.invalid == 1

    def test_unknown_model_404(self, gateway, history):
        tenant_key = gateway.authenticate("k-acme")
        response = gateway.predict(tenant_key, {
            "history": history.tolist(), "dataset": "nope"})
        assert response.status == 404
        assert usage_of(gateway, "acme")["spent"] == 0

    def test_quota_exhaustion_is_exact_and_stateless(self, gateway,
                                                     history):
        tenant_key = gateway.authenticate("k-tiny")  # 9 issued units
        payload = {"history": history.tolist()}
        assert gateway.predict(tenant_key, payload).status == 200
        assert gateway.predict(tenant_key, payload).status == 200
        refused = gateway.predict(tenant_key, payload)
        assert refused.status == 429
        assert refused.retry_after is not None
        usage = usage_of(gateway, "tiny")
        assert usage["spent"] == 2 * PREDICT_UNITS
        assert usage["remaining"] == 9 - 2 * PREDICT_UNITS
        assert usage["reserved"] == 0
        assert gateway.stats.shed_quota == 1
        # shedding is idempotent: refusals never erode the pool
        for _ in range(5):
            assert gateway.predict(tenant_key, payload).status == 429
        assert usage_of(gateway, "tiny") == usage

    def test_rate_limit_sheds_with_retry_after(self, service, tmp_path,
                                               history):
        keys = str(tmp_path / "slow.json")
        write_keys_file(keys, {"k-slow": {
            "tenant": "slow", "units": 1000, "rate": 1.0,
            "burst": float(PREDICT_UNITS)}})
        gateway = Gateway(service, ApiKeyRegistry(keys))
        tenant_key = gateway.authenticate("k-slow")
        payload = {"history": history.tolist()}
        assert gateway.predict(tenant_key, payload).status == 200
        refused = gateway.predict(tenant_key, payload)
        assert refused.status == 429
        assert refused.retry_after > 0
        usage = usage_of(gateway, "slow")
        assert usage["spent"] == PREDICT_UNITS  # the shed one is free
        assert usage["reserved"] == 0
        assert gateway.stats.shed_rate == 1

    def test_saturation_sheds_before_touching_quota(self, service,
                                                    keys_path, history):
        gateway = Gateway(service, ApiKeyRegistry(keys_path),
                          max_pending=1)
        tenant_key = gateway.authenticate("k-acme")
        service.pause()
        try:
            blocker = service.submit(history)  # fills the whole bound
            response = gateway.predict(
                tenant_key, {"history": history.tolist()})
            assert response.status == 503
            assert response.retry_after is not None
            usage = usage_of(gateway, "acme")
            assert usage["spent"] == 0 and usage["reserved"] == 0
            assert gateway.stats.shed_saturated == 1
        finally:
            service.resume()
        blocker.result()

    def test_ingest_prices_per_row_and_triggers_forecasts(
            self, gateway, service, rng):
        tenant_key = gateway.authenticate("k-acme")
        run = rng.normal(size=(L, N))
        response = gateway.ingest(tenant_key, {
            "series": "s1", "timestamp": 0.0, "values": run.tolist(),
            "wait": True})
        assert response.status == 200
        assert response.payload["accepted"] == L
        assert response.payload["ready"] is True
        assert response.payload["forecast_triggered"] is True
        forecast = np.asarray(response.payload["forecast"],
                              dtype=np.float32)
        # the cadence forecast is the service forward of this window
        np.testing.assert_array_equal(
            forecast, service.predict(run.astype(np.float32)))
        assert response.payload["units"]["spent"] == L * INGEST_UNITS
        single = gateway.ingest(tenant_key, {
            "series": "s1", "timestamp": float(L),
            "values": run[0].tolist()})
        assert single.status == 200
        assert single.payload["accepted"] == 1
        usage = usage_of(gateway, "acme")
        assert usage["spent"] == (L + 1) * INGEST_UNITS
        assert usage["spent_by"] == {"ingest": L + 1}

    def test_rejected_ticks_cost_nothing(self, gateway, rng):
        tenant_key = gateway.authenticate("k-acme")
        tick = rng.normal(size=N).tolist()
        assert gateway.ingest(tenant_key, {
            "series": "s1", "timestamp": 0.0,
            "values": tick}).status == 200
        # gap under the default "error" policy: refused before any
        # state mutation, so no units move and the stream is intact
        gap = gateway.ingest(tenant_key, {
            "series": "s1", "timestamp": 500.0, "values": tick})
        assert gap.status == 400
        stale = gateway.ingest(tenant_key, {
            "series": "s1", "timestamp": -1.0, "values": tick})
        assert stale.status == 400
        usage = usage_of(gateway, "acme")
        assert usage["spent"] == 1 * INGEST_UNITS
        assert usage["reserved"] == 0
        forecaster = gateway.forecaster_for()
        assert forecaster.state(("acme", "s1")).count == 1

    @pytest.mark.parametrize("payload", [
        {"timestamp": 0.0, "values": [1.0, 2.0, 3.0]},     # no series
        {"series": "", "timestamp": 0.0, "values": [1.0]},  # empty name
        {"series": "s", "values": [1.0, 2.0, 3.0]},         # no stamp
        {"series": "s", "timestamp": True, "values": [1.0]},
        {"series": "s", "timestamp": 0.0},                  # no values
        {"series": "s", "timestamp": 0.0, "values": []},    # empty
        {"series": "s", "timestamp": 0.0,
         "values": [[[1.0]]]},                              # 3-D
    ])
    def test_malformed_ingest_is_400(self, gateway, payload):
        tenant_key = gateway.authenticate("k-acme")
        assert gateway.ingest(tenant_key, payload).status == 400
        assert usage_of(gateway, "acme")["spent"] == 0

    def test_tenants_share_models_not_streams(self, gateway, rng):
        tick = rng.normal(size=N).tolist()
        for key in ("k-acme", "k-tiny"):
            tenant_key = gateway.authenticate(key)
            assert gateway.ingest(tenant_key, {
                "series": "shared-name", "timestamp": 0.0,
                "values": tick}).status == 200
        forecaster = gateway.forecaster_for()
        assert forecaster.state(("acme", "shared-name")).count == 1
        assert forecaster.state(("tiny", "shared-name")).count == 1

    def test_usage_is_own_tenant_only(self, gateway):
        acme = gateway.authenticate("k-acme")
        assert gateway.usage(acme, "acme").status == 200
        refused = gateway.usage(acme, "tiny")
        assert refused.status == 403

    def test_draining_refuses_everything_but_keeps_state(self, gateway,
                                                         history):
        tenant_key = gateway.authenticate("k-acme")
        gateway.begin_drain()
        for response in (
                gateway.predict(tenant_key, {"history": history.tolist()}),
                gateway.ingest(tenant_key, {"series": "s",
                                            "timestamp": 0.0,
                                            "values": [0.0] * N}),
                gateway.stats_view(),
                gateway.health()):
            assert response.status == 503
        assert gateway.health().payload["status"] == "draining"
        assert usage_of(gateway, "acme")["spent"] == 0

    def test_snapshot_composes_all_layers(self, gateway, history, rng):
        tenant_key = gateway.authenticate("k-acme")
        gateway.predict(tenant_key, {"history": history.tolist()})
        gateway.ingest(tenant_key, {"series": "s", "timestamp": 0.0,
                                    "values": rng.normal(size=N).tolist()})
        snapshot = gateway.snapshot()
        assert snapshot["gateway"]["predicts"] == 1
        assert snapshot["gateway"]["ingested_ticks"] == 1
        assert snapshot["service"]["requests"] >= 1
        assert snapshot["streams"]["ETTm1:8"]["ticks"] == 1
        assert snapshot["tenants"]["acme"]["spent"] == \
            PREDICT_UNITS + INGEST_UNITS
        json.dumps(snapshot)  # the whole view must be JSON-clean

    def test_usage_survives_a_restart(self, service, keys_path, tmp_path,
                                      history):
        usage_path = str(tmp_path / "usage.json")
        gateway = Gateway(service, ApiKeyRegistry(keys_path))
        tenant_key = gateway.authenticate("k-acme")
        gateway.predict(tenant_key, {"history": history.tolist()})
        gateway.save_usage(usage_path)

        reborn = Gateway(service, ApiKeyRegistry(keys_path))
        assert reborn.load_usage(usage_path) is True
        usage = usage_of(reborn, "acme")
        assert usage["spent"] == PREDICT_UNITS
        assert usage["issued"] == 1000
        assert usage["remaining"] == 1000 - PREDICT_UNITS
        assert Gateway(service, ApiKeyRegistry(keys_path)).load_usage(
            str(tmp_path / "never-written.json")) is False


# ----------------------------------------------------------------------
# quota exactness under concurrency
# ----------------------------------------------------------------------
class TestConcurrentQuota:
    def test_spent_plus_remaining_is_exact_under_threads(
            self, service, tmp_path, history):
        issued = 10 * PREDICT_UNITS + 2  # 10 grants, then refusals
        keys = str(tmp_path / "keys.json")
        write_keys_file(keys, {"k": {"tenant": "t", "units": issued,
                                     "rate": 1e9, "burst": 1e9}})
        gateway = Gateway(service, ApiKeyRegistry(keys))
        tenant_key = gateway.authenticate("k")
        statuses: list[int] = []
        lock = threading.Lock()

        def worker():
            response = gateway.predict(
                tenant_key, {"history": history.tolist()})
            with lock:
                statuses.append(response.status)

        threads = [threading.Thread(target=worker) for _ in range(24)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        granted = statuses.count(200)
        assert granted == 10
        assert statuses.count(429) == 24 - granted
        usage = usage_of(gateway, "t")
        assert usage["spent"] == granted * PREDICT_UNITS
        assert usage["reserved"] == 0
        assert usage["spent"] + usage["remaining"] == issued


# ----------------------------------------------------------------------
# HTTP end to end (real sockets)
# ----------------------------------------------------------------------
def http(url: str, key: str | None = None, payload=None, raw: bytes
         | None = None):
    request = urllib.request.Request(url)
    if key is not None:
        request.add_header("Authorization", f"Bearer {key}")
    data = raw
    if payload is not None:
        data = json.dumps(payload).encode("utf-8")
    try:
        with urllib.request.urlopen(request, data=data, timeout=30) as r:
            return r.status, json.loads(r.read()), dict(r.headers)
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read()), dict(error.headers)


@pytest.fixture()
def live(service, keys_path):
    gateway = Gateway(service, ApiKeyRegistry(keys_path))
    with GatewayServer(gateway).start() as server:
        yield gateway, server.url


class TestGatewayHTTP:
    def test_forecast_over_sockets_is_bitwise(self, live, service,
                                              history):
        _, base = live
        direct = service.predict(history)
        status, body, _ = http(base + "/v1/predict", key="k-acme",
                               payload={"history": history.tolist()})
        assert status == 200
        np.testing.assert_array_equal(
            np.asarray(body["forecast"], dtype=np.float32), direct)
        assert body["dataset"] == "ETTm1" and body["horizon"] == M

    def test_auth_is_enforced_per_request(self, live):
        gateway, base = live
        status, _, headers = http(base + "/v1/stats")
        assert status == 401
        assert "Bearer" in headers.get("WWW-Authenticate", "")
        assert http(base + "/v1/stats", key="wrong")[0] == 401
        assert http(base + "/v1/stats", key="k-acme")[0] == 200
        assert gateway.stats.unauthorized == 2

    def test_healthz_needs_no_key(self, live):
        _, base = live
        status, body, _ = http(base + "/healthz")
        assert status == 200
        assert body["status"] == "ok"
        assert {"queue_depth", "in_flight", "headroom"} <= set(body)

    def test_usage_endpoint_and_cross_tenant_403(self, live, history):
        _, base = live
        http(base + "/v1/predict", key="k-acme",
             payload={"history": history.tolist()})
        status, body, _ = http(base + "/v1/tenants/acme/usage",
                               key="k-acme")
        assert status == 200
        assert body["spent"] == PREDICT_UNITS
        assert http(base + "/v1/tenants/acme/usage", key="k-tiny")[0] \
            == 403

    def test_quota_429_carries_retry_after_header(self, live, history):
        _, base = live
        payload = {"history": history.tolist()}
        for _ in range(2):
            assert http(base + "/v1/predict", key="k-tiny",
                        payload=payload)[0] == 200
        status, body, headers = http(base + "/v1/predict", key="k-tiny",
                                     payload=payload)
        assert status == 429
        assert int(headers["Retry-After"]) >= 1
        assert body["remaining"] == 9 - 2 * PREDICT_UNITS

    def test_ingest_and_stats_routes(self, live, rng):
        _, base = live
        run = rng.normal(size=(L, N))
        status, body, _ = http(base + "/v1/ingest", key="k-acme",
                               payload={"series": "s", "timestamp": 0.0,
                                        "values": run.tolist(),
                                        "wait": True})
        assert status == 200
        assert body["forecast_triggered"] is True
        assert np.asarray(body["forecast"]).shape == (M, N)
        status, body, _ = http(base + "/v1/stats", key="k-acme")
        assert status == 200
        assert body["gateway"]["ingested_ticks"] == L
        assert body["streams"]["ETTm1:8"]["series"] == 1

    def test_malformed_requests_get_clean_errors(self, live):
        _, base = live
        assert http(base + "/v1/predict", key="k-acme",
                    raw=b"not json")[0] == 400
        assert http(base + "/v1/nowhere", key="k-acme",
                    payload={})[0] == 404
        assert http(base + "/nope")[0] == 404

    def test_draining_gateway_sheds_with_503(self, live, history):
        gateway, base = live
        gateway.begin_drain()
        status, _, headers = http(base + "/v1/predict", key="k-acme",
                                  payload={"history": history.tolist()})
        assert status == 503
        assert "Retry-After" in headers
        assert http(base + "/healthz")[0] == 503

    def test_concurrent_http_quota_is_exact(self, live, history):
        _, base = live
        statuses: list[int] = []
        lock = threading.Lock()

        def worker():
            status, _, _ = http(base + "/v1/predict", key="k-tiny",
                                payload={"history": history.tolist()})
            with lock:
                statuses.append(status)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        # 9 issued units, PREDICT_UNITS each: exactly 2 can ever win
        assert statuses.count(200) == 2
        assert statuses.count(429) == 6
        status, body, _ = http(base + "/v1/tenants/tiny/usage",
                               key="k-tiny")
        assert status == 200
        assert body["spent"] == 2 * PREDICT_UNITS
        assert body["reserved"] == 0
        assert body["spent"] + body["remaining"] == 9


# ----------------------------------------------------------------------
# stateful property testing: random endpoint interleavings
# ----------------------------------------------------------------------
def test_stateful_endpoint_interleavings(service, keys_path):
    """Hypothesis drives random call sequences against the live decision
    path and checks, after every step, that unit conservation holds and
    refused requests never moved tenant state."""
    pytest.importorskip("hypothesis")
    from hypothesis import strategies as st
    from hypothesis.stateful import (
        RuleBasedStateMachine,
        invariant,
        rule,
        run_state_machine_as_test,
    )

    issued = {"acme": 1000, "tiny": 9}
    flat = np.zeros((L, N), dtype=np.float32).tolist()
    tick = [0.0] * N
    tenants = st.sampled_from(sorted(issued))
    series_names = st.sampled_from(["s0", "s1"])

    class GatewayMachine(RuleBasedStateMachine):
        def __init__(self):
            super().__init__()
            self.gateway = Gateway(service, ApiKeyRegistry(keys_path))
            self.keys = {"acme": self.gateway.authenticate("k-acme"),
                         "tiny": self.gateway.authenticate("k-tiny")}
            for tenant_key in self.keys.values():
                # materialize each account at its issued size so the
                # conservation invariant is checkable from step zero
                self.gateway.account_for(tenant_key)
            self.spent = {tenant: 0 for tenant in issued}
            self.next_ts: dict = {}

        def _expect_shed_only(self, tenant, response):
            """A refusal: correct code, and no units moved."""
            assert response.status in (429, 503)
            assert self.spent[tenant] == usage_of(
                self.gateway, tenant)["spent"]

        @rule(tenant=tenants)
        def predict(self, tenant):
            response = self.gateway.predict(
                self.keys[tenant], {"history": flat})
            if response.status == 200:
                self.spent[tenant] += PREDICT_UNITS
            else:
                self._expect_shed_only(tenant, response)

        @rule(tenant=tenants)
        def predict_garbage(self, tenant):
            response = self.gateway.predict(
                self.keys[tenant], {"history": [[1.0], [2.0, 3.0]]})
            assert response.status == 400

        @rule(tenant=tenants)
        def predict_unknown_model(self, tenant):
            response = self.gateway.predict(
                self.keys[tenant], {"history": flat, "dataset": "nope"})
            assert response.status == 404

        @rule(tenant=tenants, series=series_names,
              rows=st.integers(min_value=1, max_value=8))
        def ingest(self, tenant, series, rows):
            stamp = self.next_ts.get((tenant, series), 0.0)
            response = self.gateway.ingest(self.keys[tenant], {
                "series": series, "timestamp": stamp,
                "values": [tick] * rows})
            if response.status == 200:
                assert response.payload["accepted"] == rows
                self.spent[tenant] += rows * INGEST_UNITS
                self.next_ts[(tenant, series)] = stamp + rows
            else:
                self._expect_shed_only(tenant, response)

        @rule(tenant=tenants, series=series_names)
        def ingest_gap(self, tenant, series):
            stamp = self.next_ts.get((tenant, series))
            if stamp is None:  # a fresh series cannot gap
                return
            response = self.gateway.ingest(self.keys[tenant], {
                "series": series, "timestamp": stamp + 100.0,
                "values": tick})
            # quota/rate may refuse first (shed, state untouched);
            # otherwise the gap itself is a clean 400
            if response.status != 400:
                self._expect_shed_only(tenant, response)

        @rule(tenant=tenants, other=tenants)
        def usage(self, tenant, other):
            response = self.gateway.usage(self.keys[tenant], other)
            assert response.status == (200 if other == tenant else 403)

        @rule()
        def stats(self):
            json.dumps(self.gateway.stats_view().payload)

        @rule()
        def unknown_key(self):
            assert self.gateway.authenticate("not-a-key") is None

        @invariant()
        def units_conserved(self):
            for tenant, pool in issued.items():
                usage = usage_of(self.gateway, tenant)
                assert usage["issued"] == pool
                assert usage["spent"] == self.spent[tenant]
                assert usage["reserved"] == 0  # nothing is in flight
                assert usage["spent"] + usage["remaining"] == pool
                assert usage["remaining"] >= 0

    run_state_machine_as_test(GatewayMachine)
