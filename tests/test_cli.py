"""Tests for the command-line interface and multi-seed helper."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.cli import main
from repro.experiments.common import ExperimentScale, prepare_data, run_model_seeds

MICRO_ARGS = ["--length", "500", "--epochs", "1", "--d-model", "16"]


class TestCLI:
    def test_train_evaluate_predict_serve(self, tmp_path, capsys):
        out = os.path.join(tmp_path, "models", "ettm1-h12.npz")
        code = main(["train", "--dataset", "ETTm1", "--horizon", "12",
                     "--out", out] + MICRO_ARGS)
        assert code == 0
        assert os.path.exists(out)
        assert "test MSE=" in capsys.readouterr().out

        code = main(["evaluate", "--dataset", "ETTm1", "--length", "500",
                     "--artifact", out])
        assert code == 0
        assert "test MSE=" in capsys.readouterr().out

        code = main(["evaluate", "--dataset", "ETTm1", "--length", "500",
                     "--artifact", out, "--engine", "compiled",
                     "--precision", "mixed"])
        assert code == 0
        assert "test MSE=" in capsys.readouterr().out

        preds = os.path.join(tmp_path, "preds.npy")
        code = main(["predict", "--artifact", out, "--dataset", "ETTm1",
                     "--length", "500", "--raw", "--out", preds])
        assert code == 0
        assert "forecast shape: (12, 7)" in capsys.readouterr().out
        assert np.load(preds).shape == (12, 7)

        code = main(["predict", "--artifact", out, "--dataset", "ETTm1",
                     "--length", "500", "--serve"])
        assert code == 0
        assert "forecast shape: (12, 7)" in capsys.readouterr().out

        code = main(["serve", "--artifacts", os.path.dirname(out),
                     "--dataset", "ETTm1", "--length", "500",
                     "--requests", "8", "--serve-threads", "2"])
        assert code == 0
        served = capsys.readouterr().out
        assert "8 requests" in served and "req/s" in served
        assert "2 drain thread(s)" in served
        assert "plan cache:" in served  # compiled default exposes stats

        stats_path = os.path.join(tmp_path, "stream.json")
        code = main(["stream", "--artifacts", os.path.dirname(out),
                     "--dataset", "ETTm1", "--length", "500",
                     "--ticks", "120", "--verify",
                     "--stats-out", stats_path])
        assert code == 0
        streamed = capsys.readouterr().out
        assert "ticks/s" in streamed and "bitwise identical" in streamed
        import json

        with open(stats_path) as fh:
            payload = json.load(fh)
        assert payload["parity_checked"] == payload["stream"]["forecasts"]
        assert payload["stream"]["forecasts"] > 0

        code = main(["stream", "--artifacts", os.path.dirname(out),
                     "--dataset", "ETTm1", "--length", "500",
                     "--ticks", "120", "--verify", "--workers", "2"])
        assert code == 0
        sharded = capsys.readouterr().out
        assert "sharded streaming: 2 worker(s), 64 vnodes/shard" in sharded
        assert "bitwise identical" in sharded

    def test_compare(self, capsys):
        code = main(["compare", "--dataset", "Exchange", "--horizon", "12",
                     "--models", "iTransformer", "PatchTST"] + MICRO_ARGS)
        assert code == 0
        out = capsys.readouterr().out
        assert "iTransformer" in out and "PatchTST" in out

    def test_unknown_dataset_rejected(self):
        with pytest.raises(SystemExit):
            main(["train", "--dataset", "NotADataset"])

    def test_help_documents_embedding_flags(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["train", "--help"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert "--embedding-cache" in out
        assert "--no-precompute" in out

    def test_no_precompute_flag_trains(self, tmp_path, capsys):
        cache = os.path.join(tmp_path, "emb")
        code = main(["train", "--dataset", "ETTm1", "--horizon", "12",
                     "--embedding-cache", cache, "--no-precompute"]
                    + MICRO_ARGS)
        assert code == 0
        assert "test MSE=" in capsys.readouterr().out
        assert any(name.endswith(".npz") for name in os.listdir(cache))

    def test_command_required(self):
        with pytest.raises(SystemExit):
            main([])


class TestEngineFlagValidation:
    """--engine/--precision fail fast at the parser, never deep inside."""

    def test_unknown_engine_rejected_with_clear_message(self, capsys):
        with pytest.raises(SystemExit):
            main(["predict", "--artifact", "x.npz", "--engine", "jit"])
        err = capsys.readouterr().err
        assert "unknown inference engine 'jit'" in err
        assert "'module', 'compiled'" in err

    def test_unknown_precision_rejected_with_clear_message(self, capsys):
        with pytest.raises(SystemExit):
            main(["predict", "--artifact", "x.npz",
                  "--precision", "bf16"])
        err = capsys.readouterr().err
        assert "unknown engine precision 'bf16'" in err

    def test_reduced_precision_requires_compiled_engine(self, capsys):
        with pytest.raises(SystemExit):
            main(["serve", "--artifacts", "nowhere", "--engine", "module",
                  "--precision", "int8"])
        assert "requires --engine compiled" in capsys.readouterr().err

    def test_stream_verify_requires_float32(self, capsys):
        with pytest.raises(SystemExit):
            main(["stream", "--artifacts", "nowhere", "--verify",
                  "--precision", "mixed"])
        assert "--precision float32" in capsys.readouterr().err

    def test_help_documents_engine_flags(self, capsys):
        for command in ("evaluate", "predict", "serve", "stream"):
            with pytest.raises(SystemExit) as excinfo:
                main([command, "--help"])
            assert excinfo.value.code == 0
            out = capsys.readouterr().out
            assert "--engine" in out
            assert "--precision" in out
        for command in ("serve", "stream"):
            with pytest.raises(SystemExit) as excinfo:
                main([command, "--help"])
            assert excinfo.value.code == 0
            assert "--serve-threads" in capsys.readouterr().out


class TestDurabilityFlagValidation:
    """--snapshot-* / --resume fail fast at the parser, never mid-run."""

    @pytest.mark.parametrize("flags", [
        ["--resume"],
        ["--snapshot-every", "50"],
        ["--no-wal"],
    ])
    def test_durability_flags_require_snapshot_dir(self, flags, capsys):
        with pytest.raises(SystemExit):
            main(["stream", "--artifacts", "nowhere"] + flags)
        assert "requires --snapshot-dir" in capsys.readouterr().err

    def test_help_documents_durability_flags(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["stream", "--help"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        for flag in ("--snapshot-dir", "--snapshot-every", "--resume",
                     "--no-wal"):
            assert flag in out


class TestShardFlagValidation:
    """--workers/--shard-vnodes fail fast at the parser, never mid-run."""

    @pytest.mark.parametrize("command", ["serve", "stream"])
    def test_shard_vnodes_requires_multiple_workers(self, command,
                                                    capsys):
        with pytest.raises(SystemExit):
            main([command, "--artifacts", "nowhere",
                  "--shard-vnodes", "32"])
        assert "requires --workers > 1" in capsys.readouterr().err

    def test_shard_vnodes_with_one_worker_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["serve", "--artifacts", "nowhere", "--workers", "1",
                  "--shard-vnodes", "16"])
        assert "requires --workers > 1" in capsys.readouterr().err

    @pytest.mark.parametrize("value", ["0", "-2"])
    def test_nonpositive_workers_rejected(self, value, capsys):
        with pytest.raises(SystemExit):
            main(["stream", "--artifacts", "nowhere",
                  "--workers", value])
        assert "--workers must be >= 1" in capsys.readouterr().err

    def test_nonpositive_vnodes_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["stream", "--artifacts", "nowhere", "--workers", "2",
                  "--shard-vnodes", "0"])
        assert "--shard-vnodes must be >= 1" in capsys.readouterr().err

    def test_help_documents_shard_flags(self, capsys):
        for command in ("serve", "stream"):
            with pytest.raises(SystemExit) as excinfo:
                main([command, "--help"])
            assert excinfo.value.code == 0
            out = capsys.readouterr().out
            assert "--workers" in out
            assert "--shard-vnodes" in out


class TestMultiSeed:
    def test_run_model_seeds_aggregates(self):
        scale = ExperimentScale(
            data_length=500, d_model=16, num_heads=2, num_layers=1,
            ffn_dim=32, epochs=1, teacher_epochs=1, batch_size=8,
            max_batches=2, llm_pretrain_steps=10, prompt_value_stride=8)
        data = prepare_data("Exchange", 12, scale)
        row = run_model_seeds("iTransformer", data, scale, seeds=(0, 1))
        assert set(row) == {"model", "mse", "mae", "mse_std", "mae_std"}
        assert np.isfinite(row["mse"]) and row["mse_std"] >= 0.0
