"""Tests for the command-line interface and multi-seed helper."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.cli import main
from repro.experiments.common import ExperimentScale, prepare_data, run_model_seeds

MICRO_ARGS = ["--length", "500", "--epochs", "1", "--d-model", "16"]


def make_tiny_bundle(directory: str, history_length: int = 32,
                     horizon: int = 8, num_variables: int = 3) -> None:
    """A minimal (untrained) student bundle for CLI plumbing tests."""
    from repro.core import TimeKDConfig
    from repro.core.student import StudentModel
    from repro.data import StandardScaler
    from repro.serve import save_student_artifact

    config = TimeKDConfig(
        history_length=history_length, horizon=horizon,
        num_variables=num_variables, d_model=16, num_heads=2,
        num_layers=1, ffn_dim=32)
    student = StudentModel(config)
    student.eval()
    scaler = StandardScaler().fit(np.random.default_rng(0).normal(
        size=(120, num_variables)))
    save_student_artifact(
        os.path.join(directory, "ettm1.npz"), student, config,
        scaler=scaler, metadata={"dataset": "ETTm1"})


class TestCLI:
    def test_train_evaluate_predict_serve(self, tmp_path, capsys):
        out = os.path.join(tmp_path, "models", "ettm1-h12.npz")
        code = main(["train", "--dataset", "ETTm1", "--horizon", "12",
                     "--out", out] + MICRO_ARGS)
        assert code == 0
        assert os.path.exists(out)
        assert "test MSE=" in capsys.readouterr().out

        code = main(["evaluate", "--dataset", "ETTm1", "--length", "500",
                     "--artifact", out])
        assert code == 0
        assert "test MSE=" in capsys.readouterr().out

        code = main(["evaluate", "--dataset", "ETTm1", "--length", "500",
                     "--artifact", out, "--engine", "compiled",
                     "--precision", "mixed"])
        assert code == 0
        assert "test MSE=" in capsys.readouterr().out

        preds = os.path.join(tmp_path, "preds.npy")
        code = main(["predict", "--artifact", out, "--dataset", "ETTm1",
                     "--length", "500", "--raw", "--out", preds])
        assert code == 0
        assert "forecast shape: (12, 7)" in capsys.readouterr().out
        assert np.load(preds).shape == (12, 7)

        code = main(["predict", "--artifact", out, "--dataset", "ETTm1",
                     "--length", "500", "--serve"])
        assert code == 0
        assert "forecast shape: (12, 7)" in capsys.readouterr().out

        code = main(["serve", "--artifacts", os.path.dirname(out),
                     "--dataset", "ETTm1", "--length", "500",
                     "--requests", "8", "--serve-threads", "2"])
        assert code == 0
        served = capsys.readouterr().out
        assert "8 requests" in served and "req/s" in served
        assert "2 drain thread(s)" in served
        assert "plan cache:" in served  # compiled default exposes stats

        stats_path = os.path.join(tmp_path, "stream.json")
        code = main(["stream", "--artifacts", os.path.dirname(out),
                     "--dataset", "ETTm1", "--length", "500",
                     "--ticks", "120", "--verify",
                     "--stats-out", stats_path])
        assert code == 0
        streamed = capsys.readouterr().out
        assert "ticks/s" in streamed and "bitwise identical" in streamed
        import json

        with open(stats_path) as fh:
            payload = json.load(fh)
        assert payload["parity_checked"] == payload["stream"]["forecasts"]
        assert payload["stream"]["forecasts"] > 0

        code = main(["stream", "--artifacts", os.path.dirname(out),
                     "--dataset", "ETTm1", "--length", "500",
                     "--ticks", "120", "--verify", "--workers", "2"])
        assert code == 0
        sharded = capsys.readouterr().out
        assert "sharded streaming: 2 worker(s), 64 vnodes/shard" in sharded
        assert "bitwise identical" in sharded

    def test_compare(self, capsys):
        code = main(["compare", "--dataset", "Exchange", "--horizon", "12",
                     "--models", "iTransformer", "PatchTST"] + MICRO_ARGS)
        assert code == 0
        out = capsys.readouterr().out
        assert "iTransformer" in out and "PatchTST" in out

    def test_unknown_dataset_rejected(self):
        with pytest.raises(SystemExit):
            main(["train", "--dataset", "NotADataset"])

    def test_help_documents_embedding_flags(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["train", "--help"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert "--embedding-cache" in out
        assert "--no-precompute" in out

    def test_no_precompute_flag_trains(self, tmp_path, capsys):
        cache = os.path.join(tmp_path, "emb")
        code = main(["train", "--dataset", "ETTm1", "--horizon", "12",
                     "--embedding-cache", cache, "--no-precompute"]
                    + MICRO_ARGS)
        assert code == 0
        assert "test MSE=" in capsys.readouterr().out
        assert any(name.endswith(".npz") for name in os.listdir(cache))

    def test_command_required(self):
        with pytest.raises(SystemExit):
            main([])


class TestEngineFlagValidation:
    """--engine/--precision fail fast at the parser, never deep inside."""

    def test_unknown_engine_rejected_with_clear_message(self, capsys):
        with pytest.raises(SystemExit):
            main(["predict", "--artifact", "x.npz", "--engine", "jit"])
        err = capsys.readouterr().err
        assert "unknown inference engine 'jit'" in err
        assert "'module', 'compiled'" in err

    def test_unknown_precision_rejected_with_clear_message(self, capsys):
        with pytest.raises(SystemExit):
            main(["predict", "--artifact", "x.npz",
                  "--precision", "bf16"])
        err = capsys.readouterr().err
        assert "unknown engine precision 'bf16'" in err

    def test_reduced_precision_requires_compiled_engine(self, capsys):
        with pytest.raises(SystemExit):
            main(["serve", "--artifacts", "nowhere", "--engine", "module",
                  "--precision", "int8"])
        assert "requires --engine compiled" in capsys.readouterr().err

    def test_stream_verify_requires_float32(self, capsys):
        with pytest.raises(SystemExit):
            main(["stream", "--artifacts", "nowhere", "--verify",
                  "--precision", "mixed"])
        assert "--precision float32" in capsys.readouterr().err

    def test_help_documents_engine_flags(self, capsys):
        for command in ("evaluate", "predict", "serve", "stream"):
            with pytest.raises(SystemExit) as excinfo:
                main([command, "--help"])
            assert excinfo.value.code == 0
            out = capsys.readouterr().out
            assert "--engine" in out
            assert "--precision" in out
        for command in ("serve", "stream"):
            with pytest.raises(SystemExit) as excinfo:
                main([command, "--help"])
            assert excinfo.value.code == 0
            assert "--serve-threads" in capsys.readouterr().out


class TestDurabilityFlagValidation:
    """--snapshot-* / --resume fail fast at the parser, never mid-run."""

    @pytest.mark.parametrize("flags", [
        ["--resume"],
        ["--snapshot-every", "50"],
        ["--no-wal"],
    ])
    def test_durability_flags_require_snapshot_dir(self, flags, capsys):
        with pytest.raises(SystemExit):
            main(["stream", "--artifacts", "nowhere"] + flags)
        assert "requires --snapshot-dir" in capsys.readouterr().err

    def test_help_documents_durability_flags(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["stream", "--help"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        for flag in ("--snapshot-dir", "--snapshot-every", "--resume",
                     "--no-wal"):
            assert flag in out


class TestShardFlagValidation:
    """--workers/--shard-vnodes fail fast at the parser, never mid-run."""

    @pytest.mark.parametrize("command", ["serve", "stream"])
    def test_shard_vnodes_requires_multiple_workers(self, command,
                                                    capsys):
        with pytest.raises(SystemExit):
            main([command, "--artifacts", "nowhere",
                  "--shard-vnodes", "32"])
        assert "requires --workers > 1" in capsys.readouterr().err

    def test_shard_vnodes_with_one_worker_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["serve", "--artifacts", "nowhere", "--workers", "1",
                  "--shard-vnodes", "16"])
        assert "requires --workers > 1" in capsys.readouterr().err

    @pytest.mark.parametrize("value", ["0", "-2"])
    def test_nonpositive_workers_rejected(self, value, capsys):
        with pytest.raises(SystemExit):
            main(["stream", "--artifacts", "nowhere",
                  "--workers", value])
        assert "--workers must be >= 1" in capsys.readouterr().err

    def test_nonpositive_vnodes_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["stream", "--artifacts", "nowhere", "--workers", "2",
                  "--shard-vnodes", "0"])
        assert "--shard-vnodes must be >= 1" in capsys.readouterr().err

    def test_help_documents_shard_flags(self, capsys):
        for command in ("serve", "stream"):
            with pytest.raises(SystemExit) as excinfo:
                main([command, "--help"])
            assert excinfo.value.code == 0
            out = capsys.readouterr().out
            assert "--workers" in out
            assert "--shard-vnodes" in out


class TestGatewayFlagValidation:
    """gateway flags fail fast at the parser, never on a live socket."""

    BASE = ["gateway", "--artifacts", "nowhere", "--keys", "keys.json"]

    def test_keys_file_is_required(self, capsys):
        with pytest.raises(SystemExit):
            main(["gateway", "--artifacts", "nowhere"])
        assert "--keys" in capsys.readouterr().err

    def test_negative_port_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(self.BASE + ["--port", "-1"])
        assert "--port must be >= 0" in capsys.readouterr().err

    def test_negative_quota_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(self.BASE + ["--quota", "-5"])
        assert "--quota must be >= 0" in capsys.readouterr().err

    @pytest.mark.parametrize("flag", ["--rate", "--burst",
                                      "--retry-after", "--interval"])
    def test_nonpositive_rates_rejected(self, flag, capsys):
        with pytest.raises(SystemExit):
            main(self.BASE + [flag, "0"])
        assert f"{flag} must be > 0" in capsys.readouterr().err

    def test_nonpositive_max_pending_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(self.BASE + ["--max-pending", "0"])
        assert "--max-pending must be >= 1" in capsys.readouterr().err

    def test_shard_vnodes_requires_multiple_workers(self, capsys):
        with pytest.raises(SystemExit):
            main(self.BASE + ["--shard-vnodes", "32"])
        assert "requires --workers > 1" in capsys.readouterr().err

    def test_missing_key_file_is_a_clean_error(self, tmp_path, capsys):
        code = main(["gateway", "--artifacts", str(tmp_path),
                     "--keys", str(tmp_path / "absent.json")])
        assert code == 1
        assert "cannot read key file" in capsys.readouterr().err

    def test_help_documents_gateway_flags(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["gateway", "--help"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        for flag in ("--keys", "--quota", "--rate", "--burst",
                     "--max-pending", "--retry-after", "--snapshot-dir",
                     "--stats-out", "--workers"):
            assert flag in out


class TestStatsOutOnAbnormalExit:
    """--stats-out must land on disk even when the run dies mid-flight."""

    def test_serve_stats_written_when_interrupted(self, tmp_path,
                                                  monkeypatch, capsys):
        import json

        make_tiny_bundle(str(tmp_path), history_length=96,
                         num_variables=7, horizon=24)
        stats_path = str(tmp_path / "serve-stats.json")
        # simulate a signal arriving mid-run: the first submit is the
        # first thing the body does after loading request windows
        from repro.serve import ForecastService

        def boom(*args, **kwargs):
            raise SystemExit(143)

        monkeypatch.setattr(ForecastService, "submit", boom)
        with pytest.raises(SystemExit):
            main(["serve", "--artifacts", str(tmp_path),
                  "--dataset", "ETTm1", "--length", "500",
                  "--requests", "4", "--stats-out", stats_path])
        assert "stats written" in capsys.readouterr().out
        with open(stats_path) as fh:
            payload = json.load(fh)
        assert payload["aborted"] is True
        assert payload["requests"] == 0

    def test_stream_stats_written_when_interrupted(self, tmp_path,
                                                   monkeypatch, capsys):
        import json

        make_tiny_bundle(str(tmp_path), history_length=96,
                         num_variables=7, horizon=24)
        stats_path = str(tmp_path / "stream-stats.json")
        import repro.cli as cli
        from repro.stream import replay as real_replay  # noqa: F401

        def boom(*args, **kwargs):
            raise SystemExit(143)

        monkeypatch.setattr("repro.stream.replay", boom)
        with pytest.raises(SystemExit):
            cli.main(["stream", "--artifacts", str(tmp_path),
                      "--dataset", "ETTm1", "--length", "500",
                      "--ticks", "10", "--stats-out", stats_path])
        assert "stats written" in capsys.readouterr().out
        with open(stats_path) as fh:
            payload = json.load(fh)
        assert payload["aborted"] is True
        assert payload["stream"]["ticks"] == 0
        assert "service" in payload


class TestMultiSeed:
    def test_run_model_seeds_aggregates(self):
        scale = ExperimentScale(
            data_length=500, d_model=16, num_heads=2, num_layers=1,
            ffn_dim=32, epochs=1, teacher_epochs=1, batch_size=8,
            max_batches=2, llm_pretrain_steps=10, prompt_value_stride=8)
        data = prepare_data("Exchange", 12, scale)
        row = run_model_seeds("iTransformer", data, scale, seeds=(0, 1))
        assert set(row) == {"model", "mse", "mae", "mse_std", "mae_std"}
        assert np.isfinite(row["mse"]) and row["mse_std"] >= 0.0


class TestLint:
    """The ``repro lint`` subcommand: exit codes, formats, filters."""

    BAD = ("import time\n"
           "stamp = time.time()\n")
    WARN_ONLY = ("import threading\n"
                 "threading.Thread(target=print).start()\n")
    CLEAN = "VALUE = 1\n"

    @staticmethod
    def _write(tmp_path, name, source, package="repro/gateway"):
        target = tmp_path / "src" / package / name
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source)
        return str(target)

    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        path = self._write(tmp_path, "clean.py", self.CLEAN)
        assert main(["lint", path]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_seeded_violation_exits_one_with_json(self, tmp_path, capsys):
        import json

        path = self._write(tmp_path, "bad.py", self.BAD)
        assert main(["lint", "--format", "json", path]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["total"] == 1
        (finding,) = payload["findings"]
        assert finding["rule"] == "wall-clock"
        assert finding["line"] == 2
        assert finding["severity"] == "error"

    def test_warning_exits_zero_unless_strict(self, tmp_path, capsys):
        path = self._write(tmp_path, "spawn.py", self.WARN_ONLY)
        assert main(["lint", path]) == 0
        assert main(["lint", "--strict", path]) == 1
        out = capsys.readouterr().out
        assert "thread-lifecycle" in out

    def test_rule_filter(self, tmp_path, capsys):
        path = self._write(tmp_path, "bad.py", self.BAD)
        assert main(["lint", "--rule", "atomic-write", path]) == 0
        assert main(["lint", "--rule", "wall-clock,atomic-write",
                     path]) == 1
        capsys.readouterr()

    def test_unknown_rule_is_usage_error(self, tmp_path, capsys):
        path = self._write(tmp_path, "clean.py", self.CLEAN)
        assert main(["lint", "--rule", "no-such-rule", path]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_missing_path_is_usage_error(self, tmp_path, capsys):
        missing = str(tmp_path / "nope")
        assert main(["lint", missing]) == 2
        assert "error" in capsys.readouterr().err

    def test_output_writes_json_report(self, tmp_path, capsys):
        import json

        path = self._write(tmp_path, "bad.py", self.BAD)
        report = tmp_path / "findings.json"
        assert main(["lint", "--output", str(report), path]) == 1
        capsys.readouterr()
        payload = json.loads(report.read_text())
        assert payload["summary"]["by_rule"]["wall-clock"] == 1

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("lock-discipline", "atomic-write", "dtype-hygiene",
                        "fail-closed", "wall-clock", "thread-lifecycle"):
            assert rule_id in out

    def test_default_paths_cover_installed_package(self, capsys):
        # No paths = lint the installed repro package; the repo gate in
        # test_analyze.py keeps this at zero findings.
        assert main(["lint", "--strict"]) == 0
        assert "0 finding(s)" in capsys.readouterr().out
