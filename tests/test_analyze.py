"""Tests for the static-analysis framework and its six rules.

Each rule gets three fixtures: known-good source (no findings),
known-bad source (seeded violation at a known line) and the same bad
source with an inline ``# repro: allow[rule-id]`` suppression.  The
final test is the repo gate: the full registry over the installed
``repro`` package must report zero findings — a new violation either
gets fixed or earns an explicit, greppable suppression.
"""

import os
import textwrap

import pytest

import repro
from repro.analyze import (
    Finding,
    all_rules,
    analyze_file,
    analyze_paths,
    analyze_source,
    findings_payload,
    get_rules,
    has_failures,
    iter_python_files,
    render_text,
)

EXPECTED_RULES = {
    "atomic-write": "error",
    "dtype-hygiene": "error",
    "fail-closed": "error",
    "lock-discipline": "error",
    "thread-lifecycle": "warning",
    "wall-clock": "error",
}


def check(source, rel="repro/mod.py", rule=None):
    """Run one rule (or all) over dedented ``source``."""
    rules = get_rules([rule]) if rule else None
    return analyze_source(textwrap.dedent(source), path=rel, rel=rel,
                          rules=rules)


# ----------------------------------------------------------------------
# framework
# ----------------------------------------------------------------------
class TestFramework:
    def test_registry_ids_and_severities(self):
        rules = {rule.id: rule.severity for rule in all_rules()}
        assert rules == EXPECTED_RULES

    def test_get_rules_unknown_id_raises(self):
        with pytest.raises(KeyError):
            get_rules(["no-such-rule"])

    def test_finding_render_format(self):
        found = Finding("repro/x.py", 3, 7, "wall-clock", "error", "boom")
        assert found.render() == "repro/x.py:3:7: error: boom [wall-clock]"

    def test_suppression_same_line(self):
        src = """\
            import time
            t = time.time()  # repro: allow[wall-clock] fixture stamp
        """
        assert check(src, rel="repro/gateway/x.py") == []

    def test_suppression_line_above(self):
        src = """\
            import time
            # repro: allow[wall-clock] fixture stamp
            t = time.time()
        """
        assert check(src, rel="repro/gateway/x.py") == []

    def test_suppression_star_and_list(self):
        src = """\
            import time
            a = time.time()  # repro: allow[*]
            b = time.time()  # repro: allow[dtype-hygiene, wall-clock]
        """
        assert check(src, rel="repro/gateway/x.py") == []

    def test_trailing_comment_does_not_bleed_to_next_line(self):
        # A trailing allow-comment suppresses its own line only; the
        # line below needs its own (line-above matching requires a
        # comment-only line).
        src = """\
            import time
            a = time.time()  # repro: allow[wall-clock]
            b = time.time()
        """
        found = check(src, rel="repro/gateway/x.py")
        assert [f.line for f in found] == [3]

    def test_wrong_rule_id_does_not_suppress(self):
        src = """\
            import time
            t = time.time()  # repro: allow[atomic-write]
        """
        found = check(src, rel="repro/gateway/x.py")
        assert [f.rule for f in found] == ["wall-clock"]

    def test_package_scoping(self):
        src = "import numpy as np\nx = np.zeros(4)\n"
        assert check(src, rel="repro/infer/x.py") != []
        assert check(src, rel="repro/eval/x.py") == []

    def test_parse_error_is_a_finding(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def broken(:\n")
        found = analyze_file(str(bad))
        assert len(found) == 1
        assert found[0].rule == "parse-error"
        assert found[0].severity == "error"

    def test_iter_python_files_missing_path_raises(self):
        with pytest.raises(FileNotFoundError):
            iter_python_files(["/no/such/dir-xyz"])

    def test_iter_python_files_skips_pycache(self, tmp_path):
        (tmp_path / "a.py").write_text("x = 1\n")
        cache = tmp_path / "__pycache__"
        cache.mkdir()
        (cache / "a.cpython-312.pyc.py").write_text("x = 1\n")
        files = iter_python_files([str(tmp_path)])
        assert files == [str(tmp_path / "a.py")]

    def test_findings_payload_summary(self):
        src = "import time\nt = time.time()\n"
        found = check(src, rel="repro/stream/x.py")
        payload = findings_payload(found)
        assert payload["version"] == 1
        assert payload["summary"]["total"] == 1
        assert payload["summary"]["by_rule"]["wall-clock"] == 1
        assert payload["summary"]["by_severity"]["error"] == 1
        assert {r["id"] for r in payload["rules"]} == set(EXPECTED_RULES)

    def test_has_failures_strictness(self):
        warning = Finding("f", 1, 0, "thread-lifecycle", "warning", "m")
        error = Finding("f", 1, 0, "wall-clock", "error", "m")
        assert not has_failures([])
        assert not has_failures([warning])
        assert has_failures([warning], strict=True)
        assert has_failures([error])
        assert has_failures([error], strict=False)

    def test_render_text_summary_line(self):
        text = render_text([])
        assert text.endswith("0 finding(s): 0 error(s), 0 warning(s)")


# ----------------------------------------------------------------------
# lock-discipline
# ----------------------------------------------------------------------
LOCK_BAD = """\
    import threading

    class Box:
        def __init__(self):
            self._lock = threading.Lock()
            self._items = []  # guarded-by: _lock

        def bad(self):
            return len(self._items)

        def good(self):
            with self._lock:
                return len(self._items)
"""


class TestLockDiscipline:
    def test_unlocked_access_flagged(self):
        found = check(LOCK_BAD, rule="lock-discipline")
        assert [f.line for f in found] == [9]
        assert "guarded by _lock" in found[0].message

    def test_with_lock_is_clean(self):
        src = """\
            import threading

            class Box:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._items = []  # guarded-by: _lock

                def size(self):
                    with self._lock:
                        return len(self._items)
        """
        assert check(src, rule="lock-discipline") == []

    def test_suppression(self):
        src = LOCK_BAD.replace(
            "return len(self._items)",
            "return len(self._items)  # repro: allow[lock-discipline]", 1)
        assert check(src, rule="lock-discipline") == []

    def test_init_exempt(self):
        # LOCK_BAD's __init__ writes _items unlocked; only `bad` fires.
        found = check(LOCK_BAD, rule="lock-discipline")
        assert all(f.line != 6 for f in found)

    def test_requires_lock_method(self):
        src = """\
            import threading

            class Box:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._n = 0  # guarded-by: _lock

                def _bump(self):  # requires-lock: _lock
                    self._n += 1
        """
        assert check(src, rule="lock-discipline") == []

    def test_guarded_by_class_map_and_multi_lock(self):
        src = """\
            import threading

            class Box:
                GUARDED_BY = {"_n": ("_lock", "_wake")}

                def __init__(self):
                    self._lock = threading.Lock()
                    self._wake = threading.Condition(self._lock)
                    self._n = 0

                def via_wake(self):
                    with self._wake:
                        return self._n

                def bare(self):
                    return self._n
        """
        found = check(src, rule="lock-discipline")
        assert [f.line for f in found] == [16]

    def test_nested_function_loses_lock(self):
        src = """\
            import threading

            class Box:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._n = 0  # guarded-by: _lock

                def sched(self):
                    with self._lock:
                        def callback():
                            return self._n
                        return callback
        """
        found = check(src, rule="lock-discipline")
        assert [f.line for f in found] == [11]

    def test_dotted_lock_name(self):
        src = """\
            class Helper:
                def __init__(self, owner):
                    self.owner = owner
                    self._n = 0  # guarded-by: owner._lock

                def tick(self):
                    with self.owner._lock:
                        self._n += 1
        """
        assert check(src, rule="lock-discipline") == []


# ----------------------------------------------------------------------
# atomic-write
# ----------------------------------------------------------------------
class TestAtomicWrite:
    def test_open_w_flagged(self):
        src = """\
            def dump(path):
                with open(path, "w") as handle:
                    handle.write("x")
        """
        found = check(src, rule="atomic-write")
        assert len(found) == 1
        assert "atomic" in found[0].message

    def test_np_save_and_write_text_flagged(self):
        src = """\
            import numpy as np

            def dump(path, arr):
                np.save(path, arr)
                path.write_text("x")
        """
        found = check(src, rule="atomic-write")
        assert [f.line for f in found] == [4, 5]

    def test_read_append_and_inplace_clean(self):
        src = """\
            def touch(path):
                with open(path) as handle:
                    handle.read()
                with open(path, "ab") as handle:
                    handle.write(b"x")
                with open(path, "r+b") as handle:
                    handle.write(b"x")
        """
        assert check(src, rule="atomic-write") == []

    def test_dynamic_mode_not_flagged(self):
        src = """\
            def touch(path, mode):
                with open(path, mode) as handle:
                    handle.write("x")
        """
        assert check(src, rule="atomic-write") == []

    def test_persist_module_exempt(self):
        src = """\
            def publish(path):
                with open(path, "w") as handle:
                    handle.write("x")
        """
        assert check(src, rel="repro/persist.py", rule="atomic-write") == []

    def test_suppression(self):
        src = """\
            def debug_dump(path):
                # repro: allow[atomic-write] non-durable debug output
                with open(path, "w") as handle:
                    handle.write("x")
        """
        assert check(src, rule="atomic-write") == []


# ----------------------------------------------------------------------
# dtype-hygiene
# ----------------------------------------------------------------------
class TestDtypeHygiene:
    REL = "repro/infer/x.py"

    def test_missing_dtype_flagged(self):
        src = "import numpy as np\nbuf = np.zeros((4, 4))\n"
        found = check(src, rel=self.REL, rule="dtype-hygiene")
        assert len(found) == 1
        assert "explicit dtype" in found[0].message

    def test_float64_dtype_flagged(self):
        src = """\
            import numpy as np
            a = np.zeros(4, dtype=np.float64)
            b = x.astype(np.float64)
            c = np.empty(4, dtype="f8")
            d = y.astype(float)
        """
        found = check(src, rel=self.REL, rule="dtype-hygiene")
        assert [f.line for f in found] == [2, 3, 4, 5]

    def test_float32_clean(self):
        src = """\
            import numpy as np
            a = np.zeros(4, dtype=np.float32)
            b = np.array([1.0], np.float32)
            c = x.astype(np.float32)
            d = np.full((2, 2), 0.0, np.float32)
        """
        assert check(src, rel=self.REL, rule="dtype-hygiene") == []

    def test_out_of_scope_package_clean(self):
        src = "import numpy as np\nbuf = np.zeros((4, 4))\n"
        assert check(src, rel="repro/eval/x.py", rule="dtype-hygiene") == []

    def test_suppression(self):
        src = """\
            import numpy as np
            # repro: allow[dtype-hygiene] deliberate wide accumulator
            acc = np.zeros(4, dtype=np.float64)
        """
        assert check(src, rel=self.REL, rule="dtype-hygiene") == []


# ----------------------------------------------------------------------
# fail-closed
# ----------------------------------------------------------------------
class TestFailClosed:
    REL = "repro/durable/x.py"

    def test_bare_except_flagged(self):
        src = """\
            def restore():
                try:
                    load()
                except:
                    pass
        """
        found = check(src, rel=self.REL, rule="fail-closed")
        assert [f.line for f in found] == [4]

    def test_swallowed_broad_except_flagged(self):
        src = """\
            def restore():
                try:
                    load()
                except Exception:
                    pass
        """
        found = check(src, rel=self.REL, rule="fail-closed")
        assert len(found) == 1
        assert "silently" in found[0].message

    def test_handled_broad_and_narrow_clean(self):
        src = """\
            def restore(state):
                try:
                    load()
                except Exception as error:
                    state.failure_reason = str(error)
                try:
                    prune()
                except OSError:
                    pass
        """
        assert check(src, rel=self.REL, rule="fail-closed") == []

    def test_out_of_scope_package_clean(self):
        src = "try:\n    x()\nexcept:\n    pass\n"
        assert check(src, rel="repro/eval/x.py", rule="fail-closed") == []

    def test_suppression(self):
        src = """\
            def restore():
                try:
                    load()
                # repro: allow[fail-closed] best-effort fixture teardown
                except Exception:
                    pass
        """
        assert check(src, rel=self.REL, rule="fail-closed") == []


# ----------------------------------------------------------------------
# wall-clock
# ----------------------------------------------------------------------
class TestWallClock:
    REL = "repro/gateway/x.py"

    def test_time_time_flagged(self):
        src = "import time\nstamp = time.time()\n"
        found = check(src, rel=self.REL, rule="wall-clock")
        assert len(found) == 1
        assert "monotonic" in found[0].message

    def test_from_time_import_time_flagged(self):
        src = "from time import time\n"
        found = check(src, rel=self.REL, rule="wall-clock")
        assert len(found) == 1

    def test_monotonic_clean(self):
        src = """\
            import time
            a = time.monotonic()
            b = time.perf_counter()
            time.sleep(0.1)
        """
        assert check(src, rel=self.REL, rule="wall-clock") == []

    def test_out_of_scope_package_clean(self):
        src = "import time\nstamp = time.time()\n"
        assert check(src, rel="repro/eval/x.py", rule="wall-clock") == []

    def test_suppression(self):
        src = """\
            import time
            stamp = time.time()  # repro: allow[wall-clock] report stamp
        """
        assert check(src, rel=self.REL, rule="wall-clock") == []


# ----------------------------------------------------------------------
# thread-lifecycle
# ----------------------------------------------------------------------
class TestThreadLifecycle:
    def test_orphan_thread_is_warning(self):
        src = """\
            import threading

            def spawn(work):
                threading.Thread(target=work).start()
        """
        found = check(src, rule="thread-lifecycle")
        assert len(found) == 1
        assert found[0].severity == "warning"

    def test_daemon_clean(self):
        src = """\
            import threading

            def spawn(work):
                thread = threading.Thread(target=work, daemon=True)
                thread.start()
        """
        assert check(src, rule="thread-lifecycle") == []

    def test_joined_clean(self):
        src = """\
            import threading

            class Pool:
                def start(self, work):
                    self._worker = threading.Thread(target=work)
                    self._worker.start()

                def close(self):
                    self._worker.join()
        """
        assert check(src, rule="thread-lifecycle") == []

    def test_suppression(self):
        src = """\
            import threading

            def spawn(work):
                # repro: allow[thread-lifecycle] test harness thread
                threading.Thread(target=work).start()
        """
        assert check(src, rule="thread-lifecycle") == []


# ----------------------------------------------------------------------
# the repo gate (tier 1)
# ----------------------------------------------------------------------
class TestRepoGate:
    def test_repro_package_is_clean(self):
        package_dir = os.path.dirname(os.path.abspath(repro.__file__))
        findings = analyze_paths([package_dir])
        assert findings == [], "\n" + render_text(findings)
