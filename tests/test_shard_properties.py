"""Property tests for the consistent-hash ring.

Three properties carry the sharded runtime:

* **determinism** — assignment is a pure function of key and ring
  shape, independent of instance, insertion order or process;
* **balance** — no shard's load strays past a small factor of the fair
  share (vnodes average the arcs out);
* **minimal movement** — membership changes move only the keys they
  must: growing moves keys *to* the new shard only, shrinking moves
  *from* the removed shard only, and the moved fraction stays near
  ``1/N``.

Profiles come from ``conftest.py`` (``REPRO_HYPOTHESIS_PROFILE=ci``
buys more examples in CI).
"""

from __future__ import annotations

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, strategies as st  # noqa: E402

from repro.shard import HashRing  # noqa: E402

# Stream-key shaped values: plain strings, ints, or (tenant, series)
# tuples — everything the WAL key codec accepts.
_atom = st.one_of(
    st.text(min_size=0, max_size=20),
    st.integers(min_value=-(2**31), max_value=2**31),
)
key_strategy = st.one_of(
    _atom,
    st.tuples(_atom, _atom),
    st.tuples(_atom, _atom, _atom),
)
keys_strategy = st.lists(key_strategy, min_size=1, max_size=80,
                         unique=True)


class TestDeterministicAssignment:
    @given(keys=keys_strategy,
           shards=st.integers(min_value=1, max_value=9),
           vnodes=st.integers(min_value=1, max_value=96))
    def test_fresh_rings_agree_everywhere(self, keys, shards, vnodes):
        first = HashRing(shards, vnodes=vnodes)
        second = HashRing(shards, vnodes=vnodes)
        for key in keys:
            owner = first.shard_for(key)
            assert owner == second.shard_for(key)
            assert 0 <= owner < shards

    @given(keys=keys_strategy,
           shards=st.integers(min_value=2, max_value=8))
    def test_insertion_order_is_irrelevant(self, keys, shards):
        forward = HashRing(shards)
        backward = HashRing(1)
        for shard in reversed(range(1, shards)):
            backward.add_shard(shard)
        for key in keys:
            assert forward.shard_for(key) == backward.shard_for(key)

    @given(keys=keys_strategy,
           shards=st.integers(min_value=1, max_value=8))
    def test_partition_is_a_partition(self, keys, shards):
        ring = HashRing(shards)
        groups = ring.partition(keys)
        regrouped = sorted((key for group in groups.values()
                            for key in group), key=repr)
        assert regrouped == sorted(keys, key=repr)
        for shard, group in groups.items():
            assert all(ring.shard_for(key) == shard for key in group)


class TestBalance:
    @given(shards=st.integers(min_value=2, max_value=8),
           prefix=st.text(min_size=0, max_size=8))
    def test_load_stays_within_a_small_factor_of_fair(self, shards,
                                                      prefix):
        ring = HashRing(shards)
        keys = [(prefix, f"series-{index}") for index in range(1500)]
        sizes = [len(group) for group in ring.partition(keys).values()]
        fair = len(keys) / shards
        assert len(sizes) == shards  # every shard sees traffic
        assert max(sizes) <= 2.0 * fair
        assert min(sizes) >= fair / 3.0


class TestMinimalMovement:
    @given(keys=keys_strategy,
           shards=st.integers(min_value=1, max_value=8))
    def test_growth_moves_keys_only_to_the_new_shard(self, keys, shards):
        ring = HashRing(shards)
        before = {key: ring.shard_for(key) for key in keys}
        ring.add_shard(shards)
        for key in keys:
            after = ring.shard_for(key)
            assert after == before[key] or after == shards

    @given(keys=keys_strategy,
           shards=st.integers(min_value=2, max_value=8),
           data=st.data())
    def test_shrink_moves_only_the_removed_shards_keys(self, keys,
                                                       shards, data):
        ring = HashRing(shards)
        removed = data.draw(st.integers(min_value=0,
                                        max_value=shards - 1))
        before = {key: ring.shard_for(key) for key in keys}
        ring.remove_shard(removed)
        for key in keys:
            after = ring.shard_for(key)
            if before[key] == removed:
                assert after != removed
            else:
                assert after == before[key]

    @given(shards=st.integers(min_value=2, max_value=8))
    def test_moved_fraction_is_near_one_over_n(self, shards):
        ring = HashRing(shards)
        keys = [("tenant", f"series-{index}") for index in range(1500)]
        before = {key: ring.shard_for(key) for key in keys}
        ring.add_shard(shards)
        moved = sum(ring.shard_for(key) != before[key] for key in keys)
        expected = len(keys) / (shards + 1)
        # Naive rehash-mod-N would move ~(1 - 1/N) of all keys; the
        # ring must stay in the neighborhood of the 1/(N+1) ideal.
        assert moved <= 2.5 * expected

    @given(keys=keys_strategy,
           shards=st.integers(min_value=1, max_value=8))
    def test_growth_then_shrink_round_trips(self, keys, shards):
        ring = HashRing(shards)
        before = {key: ring.shard_for(key) for key in keys}
        ring.add_shard(shards)
        ring.remove_shard(shards)
        assert {key: ring.shard_for(key) for key in keys} == before
