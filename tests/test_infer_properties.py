"""Property-based invariants of the shape-polymorphic compiled engine.

Two contracts under randomized stress: (1) any sequence of batch sizes
served by one engine stays **bitwise identical** to the module forward
with **zero tape rebuilds after warmup** — the whole point of the
polymorphic plan; (2) reduced-precision modes honor their declared
:class:`~repro.infer.ErrorBudget` — accepted compiles stay within it,
violating budgets reject at compile time, never at serve time.

Profiles are registered in ``conftest.py`` (``REPRO_HYPOTHESIS_PROFILE``
selects ``default``/``ci``); the hypothesis classes skip when hypothesis
is not installed.
"""

from __future__ import annotations

import numpy as np
import pytest

pytest.importorskip("hypothesis")

from hypothesis import given  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

from repro.core import TimeKDConfig  # noqa: E402
from repro.core.student import StudentModel  # noqa: E402
from repro.infer import (  # noqa: E402
    CompiledStudent,
    ErrorBudget,
    PrecisionError,
    resolve_precision,
)

L, N, M = 32, 3, 8
MAX_BATCH = 16


def tiny_config(**overrides) -> TimeKDConfig:
    base = TimeKDConfig(history_length=L, horizon=M, num_variables=N,
                        d_model=16, num_heads=2, num_layers=1, ffn_dim=32)
    return base.with_updates(**overrides) if overrides else base


def make_student(config: TimeKDConfig | None = None,
                 seed: int = 0) -> StudentModel:
    student = StudentModel(config or tiny_config())
    student.eval()
    rng = np.random.default_rng(seed)
    for p in student.parameters():
        p.data[...] = rng.standard_normal(p.data.shape).astype(
            np.float32) * 0.1
    return student


@pytest.fixture(scope="module")
def student() -> StudentModel:
    return make_student()


class TestShapePolymorphicProperties:
    @given(batch_sizes=st.lists(st.integers(1, MAX_BATCH),
                                min_size=1, max_size=12),
           data_seed=st.integers(0, 2**31 - 1))
    def test_any_batch_sequence_is_bitwise_parity_with_zero_rebuilds(
            self, student, batch_sizes, data_seed):
        engine = CompiledStudent(student, max_batch=MAX_BATCH)
        assert engine.rebuilds == 1  # warmup: the one eager compile
        rng = np.random.default_rng(data_seed)
        for batch in batch_sizes:
            x = rng.standard_normal((batch, L, N)).astype(np.float32)
            compiled = engine.predict(x)
            module = student.predict(x)
            assert compiled.tobytes() == module.tobytes()
        stats = engine.plan_stats()
        assert stats["rebuilds"] == 1  # no batch size caused a rebuild
        assert stats["hits"] + stats["misses"] == len(batch_sizes)
        assert stats["misses"] == len(set(batch_sizes))
        assert stats["bindings"] == len(set(batch_sizes))

    @given(batch_sizes=st.lists(st.integers(1, 40),
                                min_size=2, max_size=8),
           data_seed=st.integers(0, 2**31 - 1))
    def test_capacity_growth_preserves_parity_then_freezes(
            self, student, batch_sizes, data_seed):
        engine = CompiledStudent(student)  # lazy: grows on demand
        rng = np.random.default_rng(data_seed)
        windows = [rng.standard_normal((b, L, N)).astype(np.float32)
                   for b in batch_sizes]
        for x in windows:
            assert (engine.predict(x).tobytes()
                    == student.predict(x).tobytes())
        assert engine.capacity >= max(batch_sizes)
        # Replaying the same sizes is pure cache traffic: zero rebuilds.
        rebuilds = engine.rebuilds
        for x in windows:
            assert (engine.predict(x).tobytes()
                    == student.predict(x).tobytes())
        assert engine.rebuilds == rebuilds

    @given(batch_sizes=st.lists(st.integers(1, MAX_BATCH),
                                min_size=1, max_size=12),
           data_seed=st.integers(0, 2**31 - 1))
    def test_plan_cache_eviction_never_breaks_parity(
            self, student, batch_sizes, data_seed):
        engine = CompiledStudent(student, max_batch=MAX_BATCH,
                                 plan_cache_size=2)
        rng = np.random.default_rng(data_seed)
        for batch in batch_sizes:
            x = rng.standard_normal((batch, L, N)).astype(np.float32)
            assert (engine.predict(x).tobytes()
                    == student.predict(x).tobytes())
        stats = engine.plan_stats()
        assert stats["bindings"] <= 2
        assert stats["evictions"] == stats["misses"] - stats["bindings"]
        assert stats["rebuilds"] == 1

    @given(data_seed=st.integers(0, 2**31 - 1))
    def test_int8_outputs_stay_within_the_declared_budget(
            self, student, data_seed):
        budget = ErrorBudget()
        exact = CompiledStudent(student, max_batch=4)
        quantized = CompiledStudent(student, precision="int8",
                                    error_budget=budget, max_batch=4)
        x = np.random.default_rng(data_seed).standard_normal(
            (4, L, N)).astype(np.float32)
        reference = exact.predict(x).astype(np.float64)
        served = quantized.predict(x).astype(np.float64)
        scale = np.abs(reference).max()
        # The compile-time gate checks the probe; accepted engines
        # should honor the same envelope on arbitrary inputs (with the
        # probe↔input slack folded into one extra budget multiple).
        assert np.abs(served - reference).max() <= 2 * (
            budget.max_abs + budget.max_rel * scale)


class TestPrecisionContracts:
    def test_mixed_mode_compiles_and_reports_probe_error(self, student):
        engine = CompiledStudent(student, precision="mixed", max_batch=4)
        assert engine.probe_report["precision"] == "mixed"
        assert engine.probe_report["prediction_rel_error"] <= \
            engine.error_budget.max_rel
        x = np.random.default_rng(1).standard_normal(
            (3, L, N)).astype(np.float32)
        exact = CompiledStudent(student, max_batch=4).predict(x)
        served = engine.predict(x)
        np.testing.assert_allclose(served, exact, rtol=1e-3, atol=1e-3)

    def test_int8_accepted_within_default_budget(self, student):
        engine = CompiledStudent(student, precision="int8", max_batch=4)
        report = engine.probe_report
        assert report["precision"] == "int8"
        assert report["modules"]  # every quantized projection audited
        for name, error in report["modules"].items():
            assert error <= engine.error_budget.budget_for(name)

    def test_int8_rejected_when_module_budget_exceeded(self, student):
        with pytest.raises(PrecisionError) as excinfo:
            CompiledStudent(student, precision="int8", max_batch=4,
                            error_budget=ErrorBudget(module_rel=1e-9))
        assert "relative error budget" in str(excinfo.value)

    def test_int8_rejected_when_prediction_budget_exceeded(self, student):
        with pytest.raises(PrecisionError) as excinfo:
            CompiledStudent(
                student, precision="int8", max_batch=4,
                error_budget=ErrorBudget(max_abs=0.0, max_rel=1e-9))
        assert "probe prediction error" in str(excinfo.value)

    def test_per_module_override_names_the_offender(self, student):
        budget = ErrorBudget(overrides={"head": 1e-12})
        with pytest.raises(PrecisionError) as excinfo:
            CompiledStudent(student, precision="int8", max_batch=4,
                            error_budget=budget)
        assert "'head'" in str(excinfo.value)

    def test_rejection_happens_at_compile_time_not_serve_time(
            self, student):
        # Lazy engine: the budget gate fires on the first predict (the
        # compile), and the request that triggered it fails loudly —
        # nothing is ever served from a rejected plan.
        engine = CompiledStudent(student, precision="int8",
                                 error_budget=ErrorBudget(module_rel=1e-9))
        x = np.zeros((1, L, N), np.float32)
        with pytest.raises(PrecisionError):
            engine.predict(x)
        assert engine.plan_stats()["bindings"] == 0

    def test_int8_codebooks_are_4x_smaller_than_projections(self, student):
        engine = CompiledStudent(student, precision="int8", max_batch=2)
        assert 0 < engine.quantized_nbytes < engine.projection_nbytes / 3

    def test_quantize_per_channel_error_bound(self):
        from repro.nn import quantize_per_channel

        w = np.random.default_rng(0).standard_normal(
            (64, 32)).astype(np.float32)
        codes, scales, dequantized = quantize_per_channel(w)
        assert codes.dtype == np.int8
        # Round-to-nearest: per-channel error is at most half a step.
        assert (np.abs(w - dequantized) <= scales / 2 + 1e-7).all()

    def test_resolve_precision_fails_fast(self):
        assert resolve_precision("mixed") == "mixed"
        with pytest.raises(ValueError, match="unknown engine precision"):
            resolve_precision("bf16")

    def test_float32_mode_reports_nothing(self, student):
        engine = CompiledStudent(student, max_batch=2)
        assert engine.probe_report == {}
        assert engine.quantized_nbytes == 0
