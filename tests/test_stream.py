"""Tests for the streaming subsystem: state, ingestion, drift, replay."""

from __future__ import annotations

import os
import signal

import numpy as np
import pytest

from repro.core import TimeKDConfig
from repro.core.student import StudentModel
from repro.data import StandardScaler
from repro.serve import ForecastService, save_student_artifact
from repro.stream import (
    DriftMonitor,
    ReplayParityError,
    SeriesState,
    StreamError,
    StreamGapError,
    StreamIngestor,
    StreamingForecaster,
    replay,
    verify_parity,
)

L, N, M = 32, 3, 8


def stream_config(**overrides) -> TimeKDConfig:
    base = TimeKDConfig(history_length=L, horizon=M, num_variables=N,
                        d_model=16, num_heads=2, num_layers=1, ffn_dim=32)
    return base.with_updates(**overrides) if overrides else base


def make_bundle(directory, name="m.npz", dataset="ETTm1",
                config: TimeKDConfig | None = None) -> TimeKDConfig:
    config = config or stream_config()
    student = StudentModel(config)
    student.eval()
    scaler = StandardScaler().fit(np.random.default_rng(0).normal(
        2.0, 3.0, size=(200, config.num_variables)))
    save_student_artifact(os.path.join(directory, name), student, config,
                          scaler=scaler, metadata={"dataset": dataset})
    return config


@pytest.fixture()
def walk(rng) -> np.ndarray:
    return np.cumsum(rng.normal(size=(150, N)), axis=0)


class TestSeriesState:
    def test_append_and_window(self, rng):
        state = SeriesState(4, 2, capacity=6)
        rows = rng.normal(size=(10, 2))
        assert not state.ready
        for i, row in enumerate(rows):
            state.append(row)
            if i >= 3:
                np.testing.assert_array_equal(
                    state.window(), rows[i - 3: i + 1])
        assert state.count == 10

    def test_window_is_zero_copy_view(self, rng):
        state = SeriesState(4, 2)
        state.extend(rng.normal(size=(9, 2)))
        assert np.shares_memory(state.window(), state._buffer)
        assert not np.shares_memory(state.window(copy=True), state._buffer)
        # the view survives capacity - input_len further appends
        view = state.window()
        before = view.copy()
        for _ in range(state.capacity - state.input_len):
            state.append(np.zeros(2))
        np.testing.assert_array_equal(view, before)

    def test_extend_matches_appends(self, rng):
        rows = rng.normal(size=(23, 3))
        bulk = SeriesState(5, 3, capacity=7)
        one = SeriesState(5, 3, capacity=7)
        bulk.extend(rows)
        for row in rows:
            one.append(row)
        np.testing.assert_array_equal(bulk.window(), one.window())
        np.testing.assert_allclose(bulk.mean, one.mean)
        np.testing.assert_allclose(bulk.std, one.std)

    def test_extend_longer_than_capacity(self, rng):
        rows = rng.normal(size=(40, 2))
        state = SeriesState(4, 2, capacity=6)
        state.append(rows[0])
        state.extend(rows[1:])
        np.testing.assert_array_equal(state.window(), rows[-4:])
        np.testing.assert_array_equal(state.tail(6), rows[-6:])
        assert state.count == 40

    def test_running_stats_match_numpy(self, rng):
        rows = rng.normal(2.0, 5.0, size=(57, 4))
        state = SeriesState(8, 4)
        state.extend(rows[:20])
        for row in rows[20:]:
            state.append(row)
        np.testing.assert_allclose(state.mean, rows.mean(axis=0))
        np.testing.assert_allclose(state.std, rows.std(axis=0))

    def test_running_scaler_matches_standard_scaler(self, rng):
        rows = rng.normal(3.0, 2.0, size=(64, 3))
        state = SeriesState(8, 3)
        state.extend(rows)
        expected = StandardScaler().fit(rows)
        got = state.running_scaler()
        np.testing.assert_allclose(got.mean, expected.mean)
        np.testing.assert_allclose(got.std, expected.std)

    def test_shape_and_readiness_errors(self):
        state = SeriesState(4, 2)
        with pytest.raises(ValueError, match="shape"):
            state.append(np.zeros(3))
        with pytest.raises(ValueError, match="needs"):
            state.window()
        with pytest.raises(ValueError, match="capacity"):
            SeriesState(4, 2, capacity=2)


class TestStreamIngestor:
    def make(self, **kwargs) -> StreamIngestor:
        kwargs.setdefault("interval", 1.0)
        return StreamIngestor(4, 2, **kwargs)

    def test_monotonic_and_grid_validation(self):
        ingestor = self.make()
        ingestor.append("k", 0.0, np.zeros(2))
        with pytest.raises(StreamError, match="non-monotonic"):
            ingestor.append("k", 0.0, np.zeros(2))
        with pytest.raises(StreamError, match="grid"):
            ingestor.append("k", 1.5, np.zeros(2))

    def test_sub_interval_jitter_rejected_as_duplicate(self):
        # a retransmitted tick with float jitter must not slip through
        # as a silent duplicate row (it would shift every later window)
        ingestor = StreamIngestor(4, 2, interval=60.0)
        ingestor.append("k", 100.0, np.zeros(2))
        with pytest.raises(StreamError, match="advances less than"):
            ingestor.append("k", 100.00001, np.ones(2))
        assert ingestor.state("k").count == 1

    def test_non_finite_rejected(self):
        ingestor = self.make()
        with pytest.raises(StreamError, match="non-finite"):
            ingestor.append("k", 0.0, np.array([np.nan, 1.0]))
        with pytest.raises(StreamError, match="non-finite"):
            ingestor.append("k", 0.0, np.array([np.inf, 1.0]))

    def test_gap_policy_error(self):
        ingestor = self.make(policy="error")
        ingestor.append("k", 0.0, np.zeros(2))
        with pytest.raises(StreamGapError, match="2 missing"):
            ingestor.append("k", 3.0, np.ones(2))

    def test_gap_policy_ffill(self):
        ingestor = self.make(policy="ffill")
        ingestor.append("k", 0.0, np.array([1.0, 2.0]))
        result = ingestor.append("k", 3.0, np.array([7.0, 8.0]))
        assert result.observed == 1 and result.filled == 2
        state = ingestor.state("k")
        np.testing.assert_array_equal(
            state.tail(4),
            [[1.0, 2.0], [1.0, 2.0], [1.0, 2.0], [7.0, 8.0]])
        assert ingestor.gaps("k") == 1

    def test_gap_policy_interpolate(self):
        ingestor = self.make(policy="interpolate")
        ingestor.append("k", 0.0, np.array([0.0, 0.0]))
        ingestor.append("k", 4.0, np.array([4.0, 8.0]))
        state = ingestor.state("k")
        np.testing.assert_allclose(
            state.tail(5),
            [[0, 0], [1, 2], [2, 4], [3, 6], [4, 8]])

    def test_max_gap_limits_filling(self):
        ingestor = self.make(policy="ffill", max_gap=2)
        ingestor.append("k", 0.0, np.zeros(2))
        with pytest.raises(StreamGapError, match="max_gap"):
            ingestor.append("k", 10.0, np.ones(2))

    def test_bulk_run_and_last_timestamp(self, rng):
        ingestor = self.make()
        rows = rng.normal(size=(6, 2))
        ingestor.append("k", 5.0, rows)
        assert ingestor.last_timestamp("k") == 10.0
        np.testing.assert_array_equal(ingestor.state("k").window(),
                                      rows[-4:])
        # next tick continues from the end of the run
        ingestor.append("k", 11.0, np.zeros(2))

    def test_keys_are_independent_and_droppable(self):
        ingestor = self.make()
        ingestor.append(("a", 1), 0.0, np.zeros(2))
        ingestor.append(("b", 2), 100.0, np.ones(2))
        assert set(ingestor.keys()) == {("a", 1), ("b", 2)}
        ingestor.drop(("a", 1))
        assert ingestor.keys() == [("b", 2)]
        with pytest.raises(KeyError, match="unknown"):
            ingestor.state(("a", 1))


class TestDriftMonitor:
    def test_stable_errors_never_alarm(self, rng):
        monitor = DriftMonitor(window=16, calibration=8, threshold=4.0)
        for _ in range(200):
            assert not monitor.update(0.1 + 0.01 * rng.normal())
        assert monitor.reference == pytest.approx(0.1, abs=0.02)

    def test_shifted_errors_alarm_and_latch(self):
        monitor = DriftMonitor(window=16, calibration=8, threshold=4.0,
                               slack=0.5)
        for _ in range(8):
            monitor.update(0.1)
        for _ in range(10):
            monitor.update(1.0)
        assert monitor.alarmed
        monitor.update(0.1)  # alarm latches through a good tick
        assert monitor.alarmed
        monitor.reset()
        assert not monitor.alarmed and monitor.count == 0

    def test_isolated_spike_decays(self):
        monitor = DriftMonitor(window=16, calibration=4, threshold=8.0,
                               slack=0.5)
        for _ in range(4):
            monitor.update(1.0)
        monitor.update(3.0)  # one spike: cusum 1.5 < 8
        for _ in range(20):
            monitor.update(1.0)
        assert not monitor.alarmed

    def test_rolling_mae_mse_and_vector_errors(self):
        monitor = DriftMonitor(window=4, calibration=2)
        monitor.update(np.array([1.0, -3.0]))  # MAE 2, MSE (1 + 9) / 2
        monitor.update(4.0)
        assert monitor.rolling_mae == pytest.approx(3.0)
        assert monitor.rolling_mse == pytest.approx((5.0 + 16.0) / 2)


class TestStreamingForecaster:
    def test_cadence_every_k_ticks(self, tmp_path, walk):
        make_bundle(tmp_path)
        with ForecastService(str(tmp_path)) as service:
            fc = StreamingForecaster(service, cadence=4)
            issued = [i for i in range(100)
                      if fc.append("k", float(i), walk[i]) is not None]
        # first trigger at readiness (L = 32 ticks), then every 4th
        assert issued == list(range(L - 1, 100, 4))
        assert fc.stats.forecasts == len(issued)

    def test_on_demand_only_with_cadence_zero(self, tmp_path, walk):
        make_bundle(tmp_path)
        with ForecastService(str(tmp_path)) as service:
            fc = StreamingForecaster(service, cadence=0)
            for i in range(L):
                assert fc.append("k", float(i), walk[i]) is None
            forecast = fc.forecast("k")
            assert forecast.shape == (M, N)
            np.testing.assert_array_equal(fc.latest("k"), forecast)

    def test_forecast_before_ready_raises(self, tmp_path, walk):
        make_bundle(tmp_path)
        with ForecastService(str(tmp_path)) as service:
            fc = StreamingForecaster(service)
            with pytest.raises(KeyError, match="unknown"):
                fc.forecast("nope")
            fc.append("k", 0.0, walk[0])
            with pytest.raises(ValueError, match="rows needed"):
                fc.forecast("k")
            assert fc.latest("k") is None

    def test_drift_scored_against_issued_forecasts(self, tmp_path, walk):
        make_bundle(tmp_path)
        with ForecastService(str(tmp_path)) as service:
            fc = StreamingForecaster(service, cadence=1)
            for i in range(L + M):
                future = fc.append("k", float(i), walk[i])
                if future is not None:
                    future.result()  # resolve so scoring can use it
            # ticks after the first forecast were each scored
            assert fc.monitor("k").count == M

    def test_fallback_naive_after_alarm(self, tmp_path, walk):
        make_bundle(tmp_path)
        with ForecastService(str(tmp_path)) as service:
            fc = StreamingForecaster(service, cadence=1,
                                     fallback_naive=True,
                                     drift_calibration=2)
            for i in range(L):
                fc.append("k", float(i), walk[i])
            monitor = fc.monitor("k")
            monitor.update(0.1)
            monitor.update(0.1)
            for _ in range(20):
                monitor.update(10.0)
            assert monitor.alarmed and fc.alarmed_keys() == ["k"]
            future = fc.append("k", float(L), walk[L])
            np.testing.assert_array_equal(
                future.result(), np.tile(walk[L], (M, 1)))
            assert fc.stats.fallbacks == 1
            fc.reset_drift("k")
            assert fc.alarmed_keys() == []
            future = fc.append("k", float(L + 1), walk[L + 1])
            assert future.result().dtype == np.float32  # student again

    def test_drop_retires_all_per_key_state(self, tmp_path, walk):
        make_bundle(tmp_path)
        with ForecastService(str(tmp_path)) as service:
            fc = StreamingForecaster(service, cadence=1)
            fc.append("k", 0.0, walk[:L])
            assert fc.latest("k") is not None
            fc.drop("k")
            assert fc.keys() == []
            assert fc.latest("k") is None
            with pytest.raises(KeyError):
                fc.monitor("k")
            # a failed first append must not register a phantom key
            with pytest.raises(Exception, match="non-finite"):
                fc.append("k2", 0.0, np.full(N, np.nan))
            assert fc.keys() == []
            with pytest.raises(KeyError):
                fc.monitor("k2")

    def test_snapshot_composes_stream_and_service(self, tmp_path, walk):
        make_bundle(tmp_path)
        with ForecastService(str(tmp_path)) as service:
            fc = StreamingForecaster(service, cadence=1)
            for i in range(L + 4):
                future = fc.append("k", float(i), walk[i])
            future.result()
            snapshot = fc.snapshot()
        assert snapshot["stream"]["ticks"] == L + 4
        assert snapshot["stream"]["forecasts"] == 5
        assert snapshot["stream"]["series"] == 1
        assert snapshot["service"]["served"] >= 5  # satellite: served
        assert snapshot["service"]["requests"] >= 5

    def test_many_series_share_coalesced_batches(self, tmp_path, rng):
        make_bundle(tmp_path)
        num_series = 24
        streams = rng.normal(size=(num_series, L + 1, N)).cumsum(axis=1)
        with ForecastService(str(tmp_path), max_batch=64) as service:
            fc = StreamingForecaster(service, cadence=1)
            for s in range(num_series):
                fc.append(("tenant", s), 0.0, streams[s, :L])
            service.pause()  # a burst tick across every series
            futures = [fc.append(("tenant", s), float(L), streams[s, L])
                       for s in range(num_series)]
            service.resume()
            results = [f.result() for f in futures]
            stats = service.snapshot()
        assert stats.max_coalesced > 1
        assert len(results) == num_series
        # coalesced streaming forecasts match per-series offline predict
        with ForecastService(str(tmp_path)) as service:
            for s in range(num_series):
                offline = service.predict(streams[s, 1: L + 1])
                np.testing.assert_array_equal(results[s], offline)


class TestReplayParity:
    def test_replay_is_bitwise_identical_to_offline_predict(
            self, tmp_path, walk):
        make_bundle(tmp_path)
        with ForecastService(str(tmp_path)) as service:
            fc = StreamingForecaster(service, cadence=1)
            report = replay(fc, walk, key=("replay", 0), max_ticks=120)
            assert report.ticks == 120
            assert len(report.forecasts) == 120 - L + 1
            compared = verify_parity(report, fc, walk)
            assert compared == len(report.forecasts)

    def test_replay_parity_in_raw_units(self, tmp_path, rng):
        make_bundle(tmp_path)
        raw = rng.normal(2.0, 3.0, size=(80, N)).cumsum(axis=0) / 10 + 2.0
        with ForecastService(str(tmp_path)) as service:
            fc = StreamingForecaster(service, cadence=2, raw_values=True)
            report = replay(fc, raw, key="raw-stream")
            assert verify_parity(report, fc, raw) == len(report.forecasts)

    def test_parity_error_reported(self, tmp_path, walk):
        make_bundle(tmp_path)
        with ForecastService(str(tmp_path)) as service:
            fc = StreamingForecaster(service, cadence=1)
            report = replay(fc, walk, max_ticks=L + 2)
            tick = next(iter(report.forecasts))
            report.forecasts[tick] = report.forecasts[tick] + 1.0
            with pytest.raises(ReplayParityError, match="diverged"):
                verify_parity(report, fc, walk)

    def test_report_as_dict_is_json_friendly(self, tmp_path, walk):
        import json

        make_bundle(tmp_path)
        with ForecastService(str(tmp_path)) as service:
            fc = StreamingForecaster(service, cadence=1)
            report = replay(fc, walk, max_ticks=L)
        payload = report.as_dict()
        json.dumps(payload)
        assert payload["forecasts"] == 1
        assert payload["ticks"] == L
        assert payload["service"]["served"] >= 1


class TestServiceStatsSatellites:
    def test_as_dict_includes_served(self, tmp_path):
        config = make_bundle(tmp_path)
        window = np.zeros((config.history_length, config.num_variables),
                          np.float32)
        with ForecastService(str(tmp_path)) as service:
            service.predict(window)
            stats = service.stats.as_dict()
        assert stats["served"] == 1
        assert stats["mean_batch"] == 1.0

    def test_snapshot_is_a_consistent_copy(self, tmp_path):
        config = make_bundle(tmp_path)
        window = np.zeros((config.history_length, config.num_variables),
                          np.float32)
        with ForecastService(str(tmp_path)) as service:
            service.predict(window)
            snapshot = service.snapshot()
            service.predict(window)
            later = service.snapshot()
        assert snapshot.served == 1  # not mutated by later traffic
        assert later.served == 2
        assert snapshot is not service.stats

    def test_config_for_returns_bundle_config(self, tmp_path):
        config = make_bundle(tmp_path)
        with ForecastService(str(tmp_path)) as service:
            key = service.resolve_key(None, None)
            assert service.config_for(key) == config


class TestGracefulShutdown:
    def test_sigint_drains_queue_before_exit(self, tmp_path):
        from repro.cli import _graceful_shutdown

        config = make_bundle(tmp_path)
        rng = np.random.default_rng(0)
        windows = rng.normal(size=(12, config.history_length,
                                   config.num_variables)).astype(np.float32)
        with ForecastService(str(tmp_path)) as service:
            # The handler only raises; the drain happens as the
            # exception unwinds through the context manager (outside
            # signal context, so it can never deadlock on the service
            # lock the interrupted frame may hold).
            with pytest.raises(SystemExit) as excinfo:
                with _graceful_shutdown(service):
                    service.predict(windows[0])  # warm load
                    service.pause()
                    futures = [service.submit(w) for w in windows]
                    handler = signal.getsignal(signal.SIGINT)
                    handler(signal.SIGINT, None)
            assert excinfo.value.code == 128 + signal.SIGINT
            # every queued request completed before "exit"
            assert all(f.done() for f in futures)
            expected = service_free_predict(tmp_path, windows)
            for future, want in zip(futures, expected):
                np.testing.assert_array_equal(future.result(), want)

    def test_handlers_restored_after_context(self, tmp_path):
        from repro.cli import _graceful_shutdown

        make_bundle(tmp_path)
        before = signal.getsignal(signal.SIGINT)
        with ForecastService(str(tmp_path)) as service:
            with _graceful_shutdown(service):
                assert signal.getsignal(signal.SIGINT) is not before
            assert signal.getsignal(signal.SIGINT) is before


def service_free_predict(artifact_dir, windows) -> list:
    with ForecastService(str(artifact_dir)) as service:
        return [service.predict(w) for w in windows]
