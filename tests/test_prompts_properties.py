"""Property-based tests on the prompt pipeline invariants.

These guard the privileged-information contract: the ground-truth prompt
strictly extends the historical prompt, modality tags exactly mirror the
template structure, and no prompt ever leaks tokens outside the closed
vocabulary.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.prompts import PromptFactory
from repro.llm import NUMERIC_MODALITY, PromptTokenizer, Vocabulary

VOCAB = Vocabulary()


@st.composite
def windows(draw):
    history_len = draw(st.integers(8, 40))
    horizon = draw(st.integers(2, 16))
    num_vars = draw(st.integers(1, 4))
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    return (rng.normal(size=(history_len, num_vars)),
            rng.normal(size=(horizon, num_vars)))


class TestPromptInvariants:
    @settings(max_examples=30, deadline=None)
    @given(windows())
    def test_all_token_ids_in_vocabulary(self, window):
        history, future = window
        tok = PromptTokenizer(vocab=VOCAB)
        prompt = tok.batch_ground_truth(history, future)
        assert prompt.token_ids.min() >= 0
        assert prompt.token_ids.max() < len(VOCAB)

    @settings(max_examples=30, deadline=None)
    @given(windows())
    def test_gt_prompt_numeric_token_count(self, window):
        """GT prompt carries exactly H + M numeric tokens (stride 1)."""
        history, future = window
        tok = PromptTokenizer(vocab=VOCAB)
        prompt = tok.batch_ground_truth(history, future)
        numeric = (prompt.modality == NUMERIC_MODALITY).sum(axis=1)
        expected = history.shape[0] + future.shape[0]
        assert (numeric == expected).all()

    @settings(max_examples=30, deadline=None)
    @given(windows())
    def test_gt_extends_hd_prefix(self, window):
        history, future = window
        tok = PromptTokenizer(vocab=VOCAB)
        hd = tok.batch_historical(history, horizon=len(future))
        gt = tok.batch_ground_truth(history, future)
        prefix = hd.token_ids.shape[1] - 1  # drop eos
        np.testing.assert_array_equal(gt.token_ids[:, :prefix],
                                      hd.token_ids[:, :prefix])

    @settings(max_examples=20, deadline=None)
    @given(windows(), st.integers(2, 6))
    def test_stride_reduces_only_history_tokens(self, window, stride):
        history, future = window
        full = PromptTokenizer(vocab=VOCAB, value_stride=1)
        strided = PromptTokenizer(vocab=VOCAB, value_stride=stride)
        a = (full.batch_ground_truth(history, future).modality
             == NUMERIC_MODALITY).sum(axis=1)
        b = (strided.batch_ground_truth(history, future).modality
             == NUMERIC_MODALITY).sum(axis=1)
        expected = -(-history.shape[0] // stride) + future.shape[0]
        assert (b == expected).all()
        assert (b <= a).all()

    @settings(max_examples=20, deadline=None)
    @given(windows())
    def test_factory_matches_tokenizer(self, window):
        history, future = window
        factory = PromptFactory(VOCAB, value_stride=1)
        tok = PromptTokenizer(vocab=VOCAB, value_stride=1)
        np.testing.assert_array_equal(
            factory.ground_truth(history, future).token_ids,
            tok.batch_ground_truth(history, future).token_ids)

    @settings(max_examples=20, deadline=None)
    @given(windows())
    def test_identical_variables_get_identical_prompts(self, window):
        history, future = window
        history = np.repeat(history[:, :1], 2, axis=1)
        future = np.repeat(future[:, :1], 2, axis=1)
        tok = PromptTokenizer(vocab=VOCAB)
        prompt = tok.batch_ground_truth(history, future)
        np.testing.assert_array_equal(prompt.token_ids[0],
                                      prompt.token_ids[1])
