"""Tests for the baseline models (repro.baselines)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import (
    BASELINE_NAMES,
    LLM_BASED,
    BaselineConfig,
    DLinear,
    ITransformer,
    PatchTST,
    build_baseline,
)
from repro.baselines.base import InstanceNorm
from repro.eval import TrainSettings, evaluate_forecast_model, train_forecast_model
from repro.nn import Tensor


def tiny_config(**overrides) -> BaselineConfig:
    base = BaselineConfig(
        history_length=32, horizon=8, num_variables=3,
        d_model=16, num_heads=2, num_layers=1, ffn_dim=32,
        patch_length=8, patch_stride=4,
    )
    return base.with_updates(**overrides) if overrides else base


@pytest.fixture(scope="module")
def window():
    return np.random.default_rng(0).normal(size=(4, 32, 3)).astype(np.float32)


class TestInstanceNorm:
    def test_roundtrip(self):
        norm = InstanceNorm()
        x = Tensor(np.random.default_rng(1).normal(
            3.0, 2.0, size=(2, 16, 3)).astype(np.float32))
        back = norm.denormalize(norm.normalize(x)).data
        np.testing.assert_allclose(back, x.data, atol=1e-3)

    def test_denormalize_first_raises(self):
        with pytest.raises(RuntimeError):
            InstanceNorm().denormalize(Tensor(np.zeros((1, 2, 1), np.float32)))


class TestAllBaselines:
    @pytest.mark.parametrize("name", BASELINE_NAMES)
    def test_forward_shape(self, name, window, tiny_backbone, vocab):
        backbone = tiny_backbone if name in LLM_BASED else None
        model = build_baseline(name, tiny_config(), backbone=backbone,
                               vocab=vocab)
        out = model(window)
        assert out.shape == (4, 8, 3)
        assert np.isfinite(out.data).all()

    @pytest.mark.parametrize("name", BASELINE_NAMES)
    def test_gradients_reach_trainable_params(self, name, window,
                                              tiny_backbone, vocab):
        backbone = tiny_backbone if name in LLM_BASED else None
        model = build_baseline(name, tiny_config(), backbone=backbone,
                               vocab=vocab)
        model(window).sum().backward()
        grads = [p.grad is not None for p in model.parameters()
                 if p.requires_grad]
        assert grads and all(grads)

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            build_baseline("NotAModel", tiny_config())

    def test_single_window_input(self, tiny_backbone):
        model = ITransformer(tiny_config())
        out = model(np.zeros((32, 3), np.float32))
        assert out.shape == (1, 8, 3)


class TestArchitectureSignatures:
    def test_patchtst_patch_count(self):
        cfg = tiny_config(history_length=96, patch_length=16, patch_stride=8)
        model = PatchTST(cfg)
        assert model.num_patches == 1 + (96 - 16) // 8

    def test_patchtst_channel_independent(self):
        """Permuting variables permutes the forecast identically."""
        model = PatchTST(tiny_config())
        x = np.random.default_rng(2).normal(size=(1, 32, 3)).astype(np.float32)
        perm = np.array([2, 0, 1])
        out = model(x).data
        out_perm = model(x[:, :, perm]).data
        np.testing.assert_allclose(out[:, :, perm], out_perm, atol=1e-5)

    def test_itransformer_mixes_channels(self):
        """Perturbing one variable's history changes other variables'
        forecasts — the channel-dependent signature."""
        model = ITransformer(tiny_config())
        x = np.random.default_rng(3).normal(size=(1, 32, 3)).astype(np.float32)
        out = model(x).data
        x2 = x.copy()
        # instance norm removes affine shifts, so reshuffle in time instead
        x2[:, :, 0] = x2[:, ::-1, 0]
        out2 = model(x2).data
        assert np.abs(out[:, :, 1:] - out2[:, :, 1:]).max() > 1e-6

    def test_ofa_freezes_attention_keeps_norms(self, tiny_backbone):
        model = build_baseline("OFA", tiny_config(), backbone=tiny_backbone)
        frozen = [n for n, p in model.backbone.named_parameters()
                  if not p.requires_grad]
        live = [n for n, p in model.backbone.named_parameters()
                if p.requires_grad]
        assert any("q_proj" in n or "attention" in n for n in frozen)
        assert live and all("norm" in n for n in live)

    def test_timellm_backbone_fully_frozen(self, tiny_backbone):
        model = build_baseline("Time-LLM", tiny_config(),
                               backbone=tiny_backbone)
        assert model.backbone.num_parameters(trainable_only=True) == 0

    def test_timecma_prompt_cache_hits(self, tiny_backbone, vocab):
        model = build_baseline("TimeCMA", tiny_config(),
                               backbone=tiny_backbone, vocab=vocab)
        x = np.random.default_rng(4).normal(size=(2, 32, 3)).astype(np.float32)
        model(x)
        first = len(model._prompt_cache)
        model(x)  # identical windows -> no new entries
        assert len(model._prompt_cache) == first

    def test_dlinear_decomposition_sums(self):
        model = DLinear(tiny_config(), kernel_size=5)
        x = np.random.default_rng(5).normal(size=(1, 32, 3)).astype(np.float32)
        trend = model._moving_average(x)
        assert trend.shape == x.shape
        # moving average smooths: variance must not increase
        assert trend.var() <= x.var() + 1e-6


class TestBaselineTraining:
    def test_protocol_improves_over_init(self, ett_data):
        model = ITransformer(BaselineConfig(
            history_length=96, horizon=24, num_variables=7,
            d_model=16, num_heads=2, num_layers=1, ffn_dim=32))
        before = evaluate_forecast_model(model, ett_data.test)["mse"]
        train_forecast_model(model, ett_data, TrainSettings(
            epochs=3, batch_size=8, max_batches_per_epoch=5))
        after = evaluate_forecast_model(model, ett_data.test)["mse"]
        assert after < before

    def test_report_fields(self, ett_data):
        model = DLinear(BaselineConfig(
            history_length=96, horizon=24, num_variables=7))
        report = train_forecast_model(model, ett_data, TrainSettings(
            epochs=2, batch_size=8, max_batches_per_epoch=3))
        assert len(report.train_losses) == 2
        assert len(report.val_mse) == 2
        assert report.train_seconds > 0
