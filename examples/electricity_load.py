"""Electricity-transformer load forecasting with model comparison.

The paper's motivating scenario: predicting transformer oil temperature
and load channels (ETT) to schedule maintenance.  This example trains
TimeKD alongside two baselines, compares accuracy, and inspects the
knowledge-distillation internals (attention maps).

Run with::

    python examples/electricity_load.py
"""

from __future__ import annotations

from repro import TimeKDConfig, TimeKDForecaster
from repro.baselines import BaselineConfig, build_baseline
from repro.data import ETT_COLUMNS, load_dataset, make_forecasting_data
from repro.eval import TrainSettings, evaluate_forecast_model, format_table, train_forecast_model
from repro.experiments.figure8 import render_heatmap


def main() -> None:
    data = make_forecasting_data(
        load_dataset("ETTh1", length=1200), history_length=96, horizon=48)

    rows = []

    # --- TimeKD ---------------------------------------------------------
    timekd = TimeKDForecaster(TimeKDConfig(
        horizon=48, d_model=32, num_heads=2, num_layers=1, ffn_dim=64,
        teacher_epochs=5, student_epochs=10, batch_size=16,
        max_batches_per_epoch=8, llm_pretrain_steps=60,
        prompt_value_stride=8, frequency_minutes=60,
    ))
    timekd.fit(data)
    rows.append({"model": "TimeKD", **timekd.evaluate(data.test)})

    # --- baselines under the identical shared protocol ------------------
    settings = TrainSettings(epochs=10, batch_size=16,
                             max_batches_per_epoch=8)
    for name in ("iTransformer", "PatchTST"):
        baseline = build_baseline(name, BaselineConfig(
            history_length=96, horizon=48, num_variables=7,
            d_model=32, num_heads=2, num_layers=1, ffn_dim=64))
        train_forecast_model(baseline, data, settings)
        rows.append({"model": name,
                     **evaluate_forecast_model(baseline, data.test)})

    print(format_table(rows, title="ETTh1, horizon 48"))

    # --- inspect what the student learned from the teacher --------------
    history, future = data.test[0]
    maps = timekd.attention_maps(history, future)
    print("\nprivileged (teacher) attention across variables:")
    print(render_heatmap(maps["privileged"], ETT_COLUMNS))
    print("\nstudent attention across variables:")
    print(render_heatmap(maps["student"], ETT_COLUMNS))


if __name__ == "__main__":
    main()
