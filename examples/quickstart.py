"""Quickstart: train TimeKD on ETTm1 and forecast 24 steps ahead.

Run with::

    python examples/quickstart.py
    python examples/quickstart.py --epochs 2 --teacher-epochs 1   # CI smoke
"""

from __future__ import annotations

import argparse

import numpy as np

from repro import TimeKDConfig, TimeKDForecaster
from repro.data import load_dataset, make_forecasting_data


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--epochs", type=int, default=10,
                        help="student (distillation) epochs")
    parser.add_argument("--teacher-epochs", type=int, default=5)
    parser.add_argument("--artifact", default=None, metavar="PATH",
                        help="also save a deployable student artifact "
                             "bundle, reload it, and serve one request")
    args = parser.parse_args(argv)
    # 1. Load a dataset (synthetic ETTm1 stand-in: 7 electricity
    #    variables sampled every 15 minutes) and window it: 96 history
    #    steps -> 24 forecast steps, chronological 70/10/20 splits.
    series = load_dataset("ETTm1", length=1200)
    data = make_forecasting_data(series, history_length=96, horizon=24)
    print(f"dataset {series.name}: {series.length} steps x "
          f"{series.num_variables} variables "
          f"({len(data.train)}/{len(data.val)}/{len(data.test)} windows)")

    # 2. Configure TimeKD.  The frozen GPT-2-style CLM teacher is
    #    pretrained automatically on first use and cached under
    #    ./artifacts; only the small student runs at inference time.
    config = TimeKDConfig(
        horizon=24,
        d_model=32, num_heads=2, num_layers=1, ffn_dim=64,
        teacher_epochs=args.teacher_epochs, student_epochs=args.epochs,
        batch_size=16, max_batches_per_epoch=8,
        llm_pretrain_steps=60, prompt_value_stride=8,
    )
    model = TimeKDForecaster(config)

    # 3. Fit: trains the cross-modality teacher on privileged
    #    ground-truth prompts, then distills it into the student.
    model.fit(data)
    print("teacher loss:", [round(l, 3) for l in model.history["teacher_loss"]])
    print("val MSE:     ", [round(l, 3) for l in model.history["val_mse"]])

    # 4. Evaluate on the held-out test split (paper metrics).
    metrics = model.evaluate(data.test)
    print(f"test MSE={metrics['mse']:.4f}  MAE={metrics['mae']:.4f}")

    # 5. Forecast from the latest window.
    history, future = data.test[-1]
    forecast = model.predict(history)
    print(f"forecast shape: {forecast.shape}")
    worst = np.abs(forecast - future).mean(axis=0).argmax()
    print(f"hardest variable this window: {series.columns[worst]}")

    # 6. (optional) Deployment round-trip: save a self-contained student
    #    artifact bundle, restore it without trainer/CLM/dataset, and
    #    answer one request through the coalescing ForecastService.
    if args.artifact:
        import os

        from repro.serve import ForecastService

        model.save(args.artifact)
        print(f"artifact bundle saved to {args.artifact}")
        deployed = TimeKDForecaster.from_artifact(args.artifact)
        np.testing.assert_array_equal(deployed.predict(history), forecast)
        print("reloaded student matches in-memory predictions bitwise")
        with ForecastService(os.path.dirname(
                os.path.abspath(args.artifact))) as service:
            served = service.predict(history, dataset=series.name,
                                     horizon=24)
        np.testing.assert_array_equal(served, forecast)
        print(f"serve-mode forecast shape: {np.asarray(served).shape}")


if __name__ == "__main__":
    main()
