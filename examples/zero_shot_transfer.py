"""Zero-shot transfer: train on one ETT dataset, deploy on another.

Mirrors paper Table VI: a TimeKD model fitted on ETTh1 is evaluated
unchanged on ETTh2.  Because the student distilled generic temporal
structure (not dataset idiosyncrasies), it degrades gracefully.

Also demonstrates the deployment path: save the student, drop the
teacher/CLM with ``compact()``, and reload for inference elsewhere.

Run with::

    python examples/zero_shot_transfer.py
"""

from __future__ import annotations

import os
import tempfile

from repro import TimeKDConfig, TimeKDForecaster
from repro.data import load_dataset, make_forecasting_data
from repro.eval import format_table


def main() -> None:
    source = make_forecasting_data(
        load_dataset("ETTh1", length=1600), history_length=96, horizon=96)
    target = make_forecasting_data(
        load_dataset("ETTh2", length=1600), history_length=96, horizon=96)

    model = TimeKDForecaster(TimeKDConfig(
        horizon=96, d_model=32, num_heads=2, num_layers=1, ffn_dim=64,
        teacher_epochs=5, student_epochs=10, batch_size=16,
        max_batches_per_epoch=8, llm_pretrain_steps=60,
        prompt_value_stride=8, frequency_minutes=60,
    ))
    model.fit(source)

    rows = [
        {"setting": "in-domain (ETTh1)", **model.evaluate(source.test)},
        {"setting": "zero-shot (ETTh2)", **model.evaluate(target.test)},
    ]
    print(format_table(rows, title="Zero-shot transfer, horizon 96"))

    # deployment: persist the student artifact bundle only — the teacher
    # and the frozen LLM never ship (this is TimeKD's inference-
    # efficiency story); restoring it builds no trainer and no CLM
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "student.npz")
        model.save(path)
        model.compact()  # drop teacher + CLM from memory

        deployed = TimeKDForecaster.from_artifact(path)
        metrics = deployed.evaluate(target.test)
        print(f"\nreloaded student on ETTh2: MSE={metrics['mse']:.4f} "
              f"MAE={metrics['mae']:.4f}")
        history, _ = target.test[0]
        print(f"single-window forecast shape: {deployed.predict(history).shape}")


if __name__ == "__main__":
    main()
