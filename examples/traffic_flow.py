"""Short-term traffic forecasting on a PEMS-style sensor network.

Demonstrates the channel-dependent advantage: graph-diffused traffic
flows couple neighbouring sensors, so the inverted-embedding models
(TimeKD, iTransformer) that attend *across sensors* beat a
channel-independent model (PatchTST), mirroring paper Table II.

Run with::

    python examples/traffic_flow.py
"""

from __future__ import annotations

import numpy as np

from repro import TimeKDConfig, TimeKDForecaster
from repro.baselines import BaselineConfig, build_baseline
from repro.data import load_dataset, make_forecasting_data
from repro.eval import TrainSettings, evaluate_forecast_model, format_table, train_forecast_model


def main() -> None:
    data = make_forecasting_data(
        load_dataset("PEMS08", length=900), history_length=96, horizon=12)
    print(f"{data.name}: {data.num_variables} road sensors, horizon 12 "
          f"(= 1 hour at 5-minute ticks)")

    rows = []

    timekd = TimeKDForecaster(TimeKDConfig(
        horizon=12, d_model=32, num_heads=2, num_layers=1, ffn_dim=64,
        teacher_epochs=5, student_epochs=10, batch_size=16,
        max_batches_per_epoch=8, llm_pretrain_steps=60,
        prompt_value_stride=8, frequency_minutes=5,
    ))
    timekd.fit(data)
    rows.append({"model": "TimeKD", **timekd.evaluate(data.test)})

    settings = TrainSettings(epochs=10, batch_size=16,
                             max_batches_per_epoch=8)
    for name in ("iTransformer", "PatchTST"):
        model = build_baseline(name, BaselineConfig(
            history_length=96, horizon=12,
            num_variables=data.num_variables,
            d_model=32, num_heads=2, num_layers=1, ffn_dim=64))
        train_forecast_model(model, data, settings)
        rows.append({"model": name,
                     **evaluate_forecast_model(model, data.test)})

    print(format_table(rows, title="PEMS08, horizon 12"))

    # rush-hour check: where are forecast errors largest across the day?
    history, future = data.test[0]
    prediction = timekd.predict(history)
    per_step = np.abs(prediction - future).mean(axis=1)
    print("\nmean absolute error per forecast step (5-min ticks):")
    print("  " + " ".join(f"{e:.2f}" for e in per_step))


if __name__ == "__main__":
    main()
