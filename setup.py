"""Legacy setup shim: this environment lacks the `wheel` package needed
for PEP 660 editable installs, so `pip install -e . --no-build-isolation`
falls back to this setup.py (or use `python setup.py develop`)."""
from setuptools import setup

setup()
